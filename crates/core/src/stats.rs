//! API-call and transfer accounting.
//!
//! The paper's §4.1 reports, per proxy application, the number of CUDA API
//! calls and the bytes moved ("the matrixMul application requires 100,041
//! CUDA API calls and 1.95 MiB of memory transfers, ..."). Every call
//! through [`crate::raw::CricketClient`] updates these counters; the
//! `table_calls` harness prints the reproduction of that table.
//!
//! [`CopyStats`] complements the per-client counters with the process-wide
//! copy telemetry from the RPC stack (`oncrpc::telemetry`): bytes memmoved
//! between internal buffers versus application payload bytes transferred.

use std::collections::BTreeMap;

/// Client-side accounting.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ApiStats {
    /// Total CUDA API calls issued (every forwarded call; `RPC_NULL` and
    /// server-management procedures are excluded).
    pub api_calls: u64,
    /// Host→device payload bytes.
    pub bytes_h2d: u64,
    /// Device→host payload bytes.
    pub bytes_d2h: u64,
    /// Kernel launches.
    pub launches: u64,
    /// Per-API call counts.
    pub per_api: BTreeMap<&'static str, u64>,
}

impl ApiStats {
    /// Record one call of `api`.
    pub fn count(&mut self, api: &'static str) {
        self.api_calls += 1;
        *self.per_api.entry(api).or_insert(0) += 1;
    }

    /// Total transferred bytes, both directions.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_h2d + self.bytes_d2h
    }

    /// Mebibytes transferred, both directions.
    pub fn mib_total(&self) -> f64 {
        self.bytes_total() as f64 / (1024.0 * 1024.0)
    }

    /// Reset all counters.
    pub fn reset(&mut self) {
        *self = ApiStats::default();
    }
}

/// Process-wide copy/allocation accounting for the RPC data path.
///
/// Wraps `oncrpc::telemetry`: take one snapshot before a workload and one
/// after, and [`CopyStats::since`] gives the workload's bytes-memmoved /
/// bytes-transferred delta. The figure of merit for the Fig. 7 zero-copy
/// path is [`CopyStats::copies_per_byte`] ≤ 2 on HtoD.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CopyStats {
    /// Bytes memcpy'd between internal buffers inside the RPC stack.
    pub bytes_memmoved: u64,
    /// Application payload bytes handed to the RPC layer.
    pub bytes_transferred: u64,
}

impl CopyStats {
    /// Current process-wide counters.
    pub fn current() -> Self {
        let s = oncrpc::telemetry::snapshot();
        Self {
            bytes_memmoved: s.bytes_memmoved,
            bytes_transferred: s.bytes_transferred,
        }
    }

    /// Counter deltas since `earlier`.
    pub fn since(&self, earlier: &CopyStats) -> CopyStats {
        CopyStats {
            bytes_memmoved: self.bytes_memmoved - earlier.bytes_memmoved,
            bytes_transferred: self.bytes_transferred - earlier.bytes_transferred,
        }
    }

    /// Bytes memmoved per byte transferred.
    pub fn copies_per_byte(&self) -> f64 {
        if self.bytes_transferred == 0 {
            0.0
        } else {
            self.bytes_memmoved as f64 / self.bytes_transferred as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_accumulates() {
        let mut s = ApiStats::default();
        s.count("cudaMalloc");
        s.count("cudaMalloc");
        s.count("cudaFree");
        assert_eq!(s.api_calls, 3);
        assert_eq!(s.per_api["cudaMalloc"], 2);
        assert_eq!(s.per_api["cudaFree"], 1);
    }

    #[test]
    fn byte_math() {
        let mut s = ApiStats {
            bytes_h2d: 1024 * 1024,
            bytes_d2h: 1024 * 1024,
            ..Default::default()
        };
        assert_eq!(s.bytes_total(), 2 * 1024 * 1024);
        assert!((s.mib_total() - 2.0).abs() < 1e-12);
        s.reset();
        assert_eq!(s.api_calls, 0);
        assert_eq!(s.bytes_total(), 0);
    }
}
