//! Client-side error type.

use std::fmt;

/// Result alias for client operations.
pub type ClientResult<T> = Result<T, ClientError>;

/// Errors surfaced to applications.
#[derive(Debug)]
pub enum ClientError {
    /// Transport / RPC-layer failure.
    Rpc(oncrpc::RpcError),
    /// The server executed the CUDA API and it returned an error code.
    Cuda {
        /// The CUDA error number (see `cricket_proto::CudaError`).
        code: i32,
        /// Which API failed.
        api: &'static str,
    },
    /// A sub-op of a coalesced command batch failed on the server. The
    /// error surfaces at the flush point (a sync call or a non-batchable
    /// call), naming the originating recorded call and its index in the
    /// batch; later sub-ops of the same stream slice were skipped.
    Batch {
        /// The CUDA error number of the failed sub-op.
        code: i32,
        /// The recorded API call that failed.
        api: &'static str,
        /// Zero-based index of the failed sub-op within the batch.
        index: usize,
    },
    /// Connect-time shard resolution through a fleet directory failed: no
    /// shard registered, or every ranked candidate was unreachable.
    Directory(String),
    /// The server shed the call with `CRICKET_BUSY` (overload or quota)
    /// and it was still being shed after the retry policy's attempts ran
    /// out. The call never executed; retrying later is safe.
    Busy {
        /// The server's last retry-after hint, nanoseconds.
        retry_after_ns: u64,
    },
}

impl ClientError {
    /// Build a CUDA error for `api` from a wire code.
    pub fn cuda(api: &'static str, code: i32) -> Self {
        ClientError::Cuda { code, api }
    }

    /// The CUDA error code, if this is a CUDA-level failure.
    pub fn cuda_code(&self) -> Option<i32> {
        match self {
            ClientError::Cuda { code, .. } | ClientError::Batch { code, .. } => Some(*code),
            ClientError::Rpc(_) | ClientError::Directory(_) | ClientError::Busy { .. } => None,
        }
    }

    /// Whether this error means "the server refused, try again later"
    /// (the call was never executed).
    pub fn is_busy(&self) -> bool {
        matches!(self, ClientError::Busy { .. })
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Rpc(e) => write!(f, "rpc error: {e}"),
            ClientError::Cuda { code, api } => {
                let name = cricket_proto::CudaError::from_i32(*code)
                    .map(|e| format!("{e:?}"))
                    .unwrap_or_else(|| format!("cudaError({code})"));
                write!(f, "{api} failed: {name}")
            }
            ClientError::Batch { code, api, index } => {
                let name = cricket_proto::CudaError::from_i32(*code)
                    .map(|e| format!("{e:?}"))
                    .unwrap_or_else(|| format!("cudaError({code})"));
                write!(f, "{api} failed in batch at sub-op {index}: {name}")
            }
            ClientError::Directory(msg) => write!(f, "directory error: {msg}"),
            ClientError::Busy { retry_after_ns } => {
                write!(f, "server busy, retry after {retry_after_ns}ns")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Rpc(e) => Some(e),
            ClientError::Cuda { .. }
            | ClientError::Batch { .. }
            | ClientError::Directory(_)
            | ClientError::Busy { .. } => None,
        }
    }
}

impl From<oncrpc::RpcError> for ClientError {
    fn from(e: oncrpc::RpcError) -> Self {
        match e {
            oncrpc::RpcError::Busy { retry_after_ns } => ClientError::Busy { retry_after_ns },
            other => ClientError::Rpc(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_known_codes() {
        let e = ClientError::cuda("cudaMalloc", 2);
        let s = e.to_string();
        assert!(s.contains("cudaMalloc"), "{s}");
        assert!(s.contains("MemoryAllocation"), "{s}");
        assert_eq!(e.cuda_code(), Some(2));
    }

    #[test]
    fn display_handles_unknown_codes() {
        let e = ClientError::cuda("cudaFree", 9999);
        assert!(e.to_string().contains("cudaError(9999)"));
    }

    #[test]
    fn batch_errors_name_the_sub_op() {
        let e = ClientError::Batch {
            code: 1,
            api: "cuLaunchKernel",
            index: 3,
        };
        let s = e.to_string();
        assert!(s.contains("cuLaunchKernel"), "{s}");
        assert!(s.contains("sub-op 3"), "{s}");
        assert!(s.contains("InvalidValue"), "{s}");
        assert_eq!(e.cuda_code(), Some(1));
    }

    #[test]
    fn rpc_errors_have_no_cuda_code() {
        let e = ClientError::Rpc(oncrpc::RpcError::TimedOut);
        assert_eq!(e.cuda_code(), None);
        assert!(e.to_string().contains("timed out"));
    }

    #[test]
    fn busy_lifts_out_of_the_rpc_layer() {
        let e: ClientError = oncrpc::RpcError::Busy {
            retry_after_ns: 2_000_000,
        }
        .into();
        assert!(e.is_busy());
        assert_eq!(e.cuda_code(), None);
        let s = e.to_string();
        assert!(s.contains("busy"), "{s}");
        assert!(s.contains("2000000ns"), "{s}");
        // Every other RpcError still maps to the Rpc variant.
        let other: ClientError = oncrpc::RpcError::TimedOut.into();
        assert!(!other.is_busy());
        assert!(matches!(other, ClientError::Rpc(_)));
    }
}
