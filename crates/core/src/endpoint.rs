//! Where a client connects: one [`Endpoint`] type for every deployment
//! shape.
//!
//! * [`Endpoint::Addr`] — a single Cricket server, connect directly.
//! * [`Endpoint::Directory`] — a fleet: resolve a shard through the portmap
//!   shard directory exactly once, at connect time, then talk to it over
//!   the normal zero-copy path. The directory ranks shards under a
//!   [`Placement`] policy; if the best shard's listener is down (crashed
//!   shard behind a stale directory entry) the connect transparently fails
//!   over to the next-ranked candidate.
//!
//! ```no_run
//! use cricket_client::{Context, Endpoint};
//!
//! // Direct:
//! let ctx = Context::connect(&Endpoint::addr("127.0.0.1:4000").unwrap()).unwrap();
//! // Through a fleet directory:
//! let ctx = Context::connect(&Endpoint::directory("127.0.0.1:111").unwrap()).unwrap();
//! ```

use std::net::{SocketAddr, ToSocketAddrs};

use crate::error::{ClientError, ClientResult};
pub use cricket_fleet::Placement;
use cricket_fleet::ShardDirectory;

/// Where to connect. See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// One specific server.
    Addr(SocketAddr),
    /// Resolve a shard of `(prog, vers)` through the fleet directory at
    /// `dir_addr` under `placement`, with failover down the ranked
    /// candidate list.
    Directory {
        /// The directory service's TCP address.
        dir_addr: SocketAddr,
        /// RPC program whose shards to resolve.
        prog: u32,
        /// RPC program version.
        vers: u32,
        /// Shard ranking policy.
        placement: Placement,
    },
}

impl Endpoint {
    /// A direct endpoint (first address `addr` resolves to).
    pub fn addr<A: ToSocketAddrs>(addr: A) -> ClientResult<Self> {
        Ok(Endpoint::Addr(resolve(addr)?))
    }

    /// A Cricket fleet-directory endpoint with the default [`Placement`].
    pub fn directory<A: ToSocketAddrs>(dir_addr: A) -> ClientResult<Self> {
        Ok(Endpoint::Directory {
            dir_addr: resolve(dir_addr)?,
            prog: cricket_proto::CRICKET_CUDA,
            vers: cricket_proto::CRICKET_V1,
            placement: Placement::default(),
        })
    }

    /// Override the placement policy (no-op on [`Endpoint::Addr`]).
    pub fn placement(mut self, p: Placement) -> Self {
        if let Endpoint::Directory { placement, .. } = &mut self {
            *placement = p;
        }
        self
    }

    /// Resolve this endpoint to a connected TCP transport and the address
    /// it landed on. For [`Endpoint::Directory`] this performs the
    /// dump → rank → connect → assign sequence, failing over down the
    /// candidate list; placement never recurs on the per-call path.
    pub fn connect_transport(&self) -> ClientResult<(oncrpc::TcpTransport, SocketAddr)> {
        self.connect_transport_for(None)
    }

    /// [`connect_transport`](Self::connect_transport), but session-home
    /// aware: when `token` identifies a client whose session was pinned to
    /// a shard by live migration, the directory's home entry is tried
    /// before placement ranking. A dead or unset home falls back to the
    /// normal candidate walk, so a crashed destination never strands the
    /// client. Hardened clients pass their replay token here from the
    /// reconnect hook; plain connects pass `None`.
    pub fn connect_transport_for(
        &self,
        token: Option<u64>,
    ) -> ClientResult<(oncrpc::TcpTransport, SocketAddr)> {
        match *self {
            Endpoint::Addr(addr) => {
                let t = oncrpc::TcpTransport::connect(addr).map_err(ClientError::Rpc)?;
                Ok((t, addr))
            }
            Endpoint::Directory {
                dir_addr,
                prog,
                vers,
                placement,
            } => {
                let dir = ShardDirectory {
                    addr: dir_addr,
                    prog,
                    vers,
                };
                if let Some(token) = token {
                    // The directory already returns 0 when the pinned
                    // shard has deregistered, so only a crashed-but-stale
                    // home reaches the connect failure path here.
                    if let Ok(port) = dir.home(token) {
                        if port != 0 {
                            let home_addr = SocketAddr::new(dir_addr.ip(), port as u16);
                            if let Ok(t) = oncrpc::TcpTransport::connect(home_addr) {
                                // No assign(): the session already lives
                                // there, this is not new load.
                                return Ok((t, home_addr));
                            }
                        }
                    }
                }
                let candidates = dir.candidates(placement).map_err(ClientError::Rpc)?;
                if candidates.is_empty() {
                    return Err(ClientError::Directory(format!(
                        "no shard of prog {prog} vers {vers} registered at {dir_addr}"
                    )));
                }
                let total = candidates.len();
                for entry in candidates {
                    let shard_addr = dir.shard_addr(&entry);
                    // A dead listener here is a crashed shard behind a stale
                    // directory entry — fall over to the next candidate.
                    let Ok(t) = oncrpc::TcpTransport::connect(shard_addr) else {
                        continue;
                    };
                    // Best-effort: tell the directory this shard just took a
                    // session so concurrent connects spread out before its
                    // next heartbeat.
                    let _ = dir.assign(entry.port);
                    return Ok((t, shard_addr));
                }
                Err(ClientError::Directory(format!(
                    "all {total} shards of prog {prog} vers {vers} at {dir_addr} unreachable"
                )))
            }
        }
    }
}

fn resolve<A: ToSocketAddrs>(addr: A) -> ClientResult<SocketAddr> {
    addr.to_socket_addrs()
        .map_err(|e| ClientError::Rpc(oncrpc::RpcError::Io(e)))?
        .next()
        .ok_or_else(|| ClientError::Directory("address resolved to nothing".into()))
}
