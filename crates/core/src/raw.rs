//! The raw virtualized CUDA API: typed wrappers over the generated stub,
//! with accounting and client-flavor behavior.

use crate::ccompat::{launch_compat_marshal, LAUNCH_COMPAT_NS, TIRPC_CALL_NS};
use crate::env::ClientFlavor;
use crate::error::{ClientError, ClientResult};
use crate::stats::ApiStats;
use cricket_proto::{CricketV1Client, DeviceProp, MemInfo, RpcDim3, ServerStats};
use simnet::SimClock;
use std::sync::Arc;

/// The Cricket client: one connection to a Cricket server.
pub struct CricketClient {
    stub: CricketV1Client,
    flavor: ClientFlavor,
    /// Present in simulated mode: client-side host work (launch-compat
    /// marshalling, libtirpc overhead, PRNG init) is charged here.
    clock: Option<Arc<SimClock>>,
    /// Accounting.
    pub stats: ApiStats,
}

impl CricketClient {
    /// Wrap a transport with the given client flavor.
    pub fn new(
        transport: Box<dyn oncrpc::Transport>,
        flavor: ClientFlavor,
        clock: Option<Arc<SimClock>>,
    ) -> Self {
        Self {
            stub: CricketV1Client::new(transport),
            flavor,
            clock,
            stats: ApiStats::default(),
        }
    }

    /// The simulated clock, if any (examples print virtual times from it).
    pub fn clock(&self) -> Option<&Arc<SimClock>> {
        self.clock.as_ref()
    }

    /// The client flavor.
    pub fn flavor(&self) -> ClientFlavor {
        self.flavor
    }

    /// Override the ONC RPC maximum fragment size (fragmentation ablation).
    pub fn set_max_fragment(&mut self, max_fragment: usize) {
        self.stub.rpc.set_max_fragment(max_fragment);
    }

    /// The underlying RPC client, for resilience configuration: retry
    /// policy, per-call deadline, reconnect hook, client credential.
    pub fn rpc(&mut self) -> &mut oncrpc::RpcClient {
        &mut self.stub.rpc
    }

    /// Charge client-side host nanoseconds (simulated mode only).
    pub fn charge(&self, ns: u64) {
        if let Some(c) = &self.clock {
            c.advance(ns);
        }
    }

    fn pre_call(&mut self, api: &'static str) {
        self.stats.count(api);
        if self.flavor == ClientFlavor::CTirpc {
            self.charge(TIRPC_CALL_NS);
        }
    }

    fn int_status(api: &'static str, code: i32) -> ClientResult<()> {
        if code == 0 {
            Ok(())
        } else {
            Err(ClientError::cuda(api, code))
        }
    }

    // ---- device management ------------------------------------------

    /// cudaGetDeviceCount.
    pub fn device_count(&mut self) -> ClientResult<i32> {
        self.pre_call("cudaGetDeviceCount");
        self.stub
            .cuda_get_device_count()?
            .into_result()
            .map_err(|c| ClientError::cuda("cudaGetDeviceCount", c))
    }

    /// cudaGetDeviceProperties.
    pub fn device_properties(&mut self, ordinal: i32) -> ClientResult<DeviceProp> {
        self.pre_call("cudaGetDeviceProperties");
        match self.stub.cuda_get_device_properties(&ordinal)? {
            cricket_proto::PropResult::Prop(p) => Ok(p),
            cricket_proto::PropResult::Default(c) => {
                Err(ClientError::cuda("cudaGetDeviceProperties", c))
            }
        }
    }

    /// cudaSetDevice.
    pub fn set_device(&mut self, ordinal: i32) -> ClientResult<()> {
        self.pre_call("cudaSetDevice");
        Self::int_status("cudaSetDevice", self.stub.cuda_set_device(&ordinal)?)
    }

    /// cudaGetDevice.
    pub fn get_device(&mut self) -> ClientResult<i32> {
        self.pre_call("cudaGetDevice");
        self.stub
            .cuda_get_device()?
            .into_result()
            .map_err(|c| ClientError::cuda("cudaGetDevice", c))
    }

    /// cudaDeviceSynchronize.
    pub fn device_synchronize(&mut self) -> ClientResult<()> {
        self.pre_call("cudaDeviceSynchronize");
        Self::int_status(
            "cudaDeviceSynchronize",
            self.stub.cuda_device_synchronize()?,
        )
    }

    /// cudaDeviceReset.
    pub fn device_reset(&mut self) -> ClientResult<()> {
        self.pre_call("cudaDeviceReset");
        Self::int_status("cudaDeviceReset", self.stub.cuda_device_reset()?)
    }

    // ---- memory -------------------------------------------------------

    /// cudaMalloc.
    pub fn malloc(&mut self, size: u64) -> ClientResult<u64> {
        self.pre_call("cudaMalloc");
        self.stub
            .cuda_malloc(&size)?
            .into_result()
            .map_err(|c| ClientError::cuda("cudaMalloc", c))
    }

    /// cudaFree.
    pub fn free(&mut self, ptr: u64) -> ClientResult<()> {
        self.pre_call("cudaFree");
        Self::int_status("cudaFree", self.stub.cuda_free(&ptr)?)
    }

    /// cudaMemcpy host→device. The payload travels borrowed end to end:
    /// the stub defers it into a scatter-gather record, so the only copies
    /// left are inside the transport and the server's device write.
    pub fn memcpy_htod(&mut self, dst: u64, data: &[u8]) -> ClientResult<()> {
        self.pre_call("cudaMemcpy(H2D)");
        self.stats.bytes_h2d += data.len() as u64;
        oncrpc::telemetry::add_transferred(data.len());
        Self::int_status("cudaMemcpy(H2D)", self.stub.cuda_memcpy_htod(&dst, data)?)
    }

    /// cudaMemcpy device→host.
    pub fn memcpy_dtoh(&mut self, src: u64, len: u64) -> ClientResult<Vec<u8>> {
        self.pre_call("cudaMemcpy(D2H)");
        let out = self
            .stub
            .cuda_memcpy_dtoh(&src, &len)?
            .into_result()
            .map_err(|c| ClientError::cuda("cudaMemcpy(D2H)", c))?;
        self.stats.bytes_d2h += out.len() as u64;
        oncrpc::telemetry::add_transferred(out.len());
        Ok(out)
    }

    /// cudaMemcpy device→device.
    pub fn memcpy_dtod(&mut self, dst: u64, src: u64, len: u64) -> ClientResult<()> {
        self.pre_call("cudaMemcpy(D2D)");
        Self::int_status(
            "cudaMemcpy(D2D)",
            self.stub.cuda_memcpy_dtod(&dst, &src, &len)?,
        )
    }

    /// cudaMemset.
    pub fn memset(&mut self, ptr: u64, value: i32, len: u64) -> ClientResult<()> {
        self.pre_call("cudaMemset");
        Self::int_status("cudaMemset", self.stub.cuda_memset(&ptr, &value, &len)?)
    }

    /// cudaGetLastError.
    pub fn get_last_error(&mut self) -> ClientResult<i32> {
        self.pre_call("cudaGetLastError");
        self.stub
            .cuda_get_last_error()?
            .into_result()
            .map_err(|c| ClientError::cuda("cudaGetLastError", c))
    }

    /// cudaMemGetInfo.
    pub fn mem_get_info(&mut self) -> ClientResult<MemInfo> {
        self.pre_call("cudaMemGetInfo");
        match self.stub.cuda_mem_get_info()? {
            cricket_proto::MemInfoResult::Info(i) => Ok(i),
            cricket_proto::MemInfoResult::Default(c) => Err(ClientError::cuda("cudaMemGetInfo", c)),
        }
    }

    // ---- modules and launches -----------------------------------------

    /// cuModuleLoadData: ship a cubin image read on the client side to the
    /// server (the paper's §3.3 loading path).
    pub fn module_load(&mut self, image: &[u8]) -> ClientResult<u64> {
        self.pre_call("cuModuleLoadData");
        self.stats.bytes_h2d += image.len() as u64;
        oncrpc::telemetry::add_transferred(image.len());
        self.stub
            .cu_module_load_data(image)?
            .into_result()
            .map_err(|c| ClientError::cuda("cuModuleLoadData", c))
    }

    /// cuModuleGetFunction.
    pub fn module_get_function(&mut self, module: u64, name: &str) -> ClientResult<u64> {
        self.pre_call("cuModuleGetFunction");
        self.stub
            .cu_module_get_function(&module, name)?
            .into_result()
            .map_err(|c| ClientError::cuda("cuModuleGetFunction", c))
    }

    /// cuModuleUnload.
    pub fn module_unload(&mut self, module: u64) -> ClientResult<()> {
        self.pre_call("cuModuleUnload");
        Self::int_status("cuModuleUnload", self.stub.cu_module_unload(&module)?)
    }

    /// cuLaunchKernel. The C flavor pays for the `<<<...>>>`-compatibility
    /// marshalling the Rust implementation omits (paper §4.2).
    pub fn launch_kernel(
        &mut self,
        func: u64,
        grid: RpcDim3,
        block: RpcDim3,
        shared_mem: u32,
        stream: u64,
        params: &[u8],
    ) -> ClientResult<()> {
        self.pre_call("cuLaunchKernel");
        self.stats.launches += 1;
        let staged;
        let params = if self.flavor == ClientFlavor::CTirpc {
            staged = launch_compat_marshal(params);
            self.charge(LAUNCH_COMPAT_NS);
            &staged[..]
        } else {
            params
        };
        Self::int_status(
            "cuLaunchKernel",
            self.stub
                .cuda_launch_kernel(&func, &grid, &block, &shared_mem, &stream, params)?,
        )
    }

    // ---- streams and events -------------------------------------------

    /// cudaStreamCreate.
    pub fn stream_create(&mut self) -> ClientResult<u64> {
        self.pre_call("cudaStreamCreate");
        self.stub
            .cuda_stream_create()?
            .into_result()
            .map_err(|c| ClientError::cuda("cudaStreamCreate", c))
    }

    /// cudaStreamDestroy.
    pub fn stream_destroy(&mut self, h: u64) -> ClientResult<()> {
        self.pre_call("cudaStreamDestroy");
        Self::int_status("cudaStreamDestroy", self.stub.cuda_stream_destroy(&h)?)
    }

    /// cudaStreamSynchronize.
    pub fn stream_synchronize(&mut self, h: u64) -> ClientResult<()> {
        self.pre_call("cudaStreamSynchronize");
        Self::int_status(
            "cudaStreamSynchronize",
            self.stub.cuda_stream_synchronize(&h)?,
        )
    }

    /// cudaEventCreate.
    pub fn event_create(&mut self) -> ClientResult<u64> {
        self.pre_call("cudaEventCreate");
        self.stub
            .cuda_event_create()?
            .into_result()
            .map_err(|c| ClientError::cuda("cudaEventCreate", c))
    }

    /// cudaEventRecord.
    pub fn event_record(&mut self, event: u64, stream: u64) -> ClientResult<()> {
        self.pre_call("cudaEventRecord");
        Self::int_status(
            "cudaEventRecord",
            self.stub.cuda_event_record(&event, &stream)?,
        )
    }

    /// cudaEventSynchronize.
    pub fn event_synchronize(&mut self, event: u64) -> ClientResult<()> {
        self.pre_call("cudaEventSynchronize");
        Self::int_status(
            "cudaEventSynchronize",
            self.stub.cuda_event_synchronize(&event)?,
        )
    }

    /// cudaEventElapsedTime (milliseconds).
    pub fn event_elapsed_ms(&mut self, start: u64, stop: u64) -> ClientResult<f32> {
        self.pre_call("cudaEventElapsedTime");
        self.stub
            .cuda_event_elapsed_time(&start, &stop)?
            .into_result()
            .map_err(|c| ClientError::cuda("cudaEventElapsedTime", c))
    }

    /// cudaEventDestroy.
    pub fn event_destroy(&mut self, event: u64) -> ClientResult<()> {
        self.pre_call("cudaEventDestroy");
        Self::int_status("cudaEventDestroy", self.stub.cuda_event_destroy(&event)?)
    }

    // ---- cuBLAS ---------------------------------------------------------

    /// cublasCreate.
    pub fn blas_create(&mut self) -> ClientResult<u64> {
        self.pre_call("cublasCreate");
        self.stub
            .cublas_create()?
            .into_result()
            .map_err(|c| ClientError::cuda("cublasCreate", c))
    }

    /// cublasDestroy.
    pub fn blas_destroy(&mut self, h: u64) -> ClientResult<()> {
        self.pre_call("cublasDestroy");
        Self::int_status("cublasDestroy", self.stub.cublas_destroy(&h)?)
    }

    /// cublasSgemm (column-major).
    #[allow(clippy::too_many_arguments)]
    pub fn sgemm(
        &mut self,
        h: u64,
        transa: i32,
        transb: i32,
        m: i32,
        n: i32,
        k: i32,
        alpha: f32,
        a: u64,
        lda: i32,
        b: u64,
        ldb: i32,
        beta: f32,
        c: u64,
        ldc: i32,
    ) -> ClientResult<()> {
        self.pre_call("cublasSgemm");
        Self::int_status(
            "cublasSgemm",
            self.stub.cublas_sgemm(
                &h, &transa, &transb, &m, &n, &k, &alpha, &a, &lda, &b, &ldb, &beta, &c, &ldc,
            )?,
        )
    }

    /// cublasDgemm (column-major).
    #[allow(clippy::too_many_arguments)]
    pub fn dgemm(
        &mut self,
        h: u64,
        transa: i32,
        transb: i32,
        m: i32,
        n: i32,
        k: i32,
        alpha: f64,
        a: u64,
        lda: i32,
        b: u64,
        ldb: i32,
        beta: f64,
        c: u64,
        ldc: i32,
    ) -> ClientResult<()> {
        self.pre_call("cublasDgemm");
        Self::int_status(
            "cublasDgemm",
            self.stub.cublas_dgemm(
                &h, &transa, &transb, &m, &n, &k, &alpha, &a, &lda, &b, &ldb, &beta, &c, &ldc,
            )?,
        )
    }

    // ---- cuSolverDn ------------------------------------------------------

    /// cusolverDnCreate.
    pub fn solver_create(&mut self) -> ClientResult<u64> {
        self.pre_call("cusolverDnCreate");
        self.stub
            .cusolver_dn_create()?
            .into_result()
            .map_err(|c| ClientError::cuda("cusolverDnCreate", c))
    }

    /// cusolverDnDestroy.
    pub fn solver_destroy(&mut self, h: u64) -> ClientResult<()> {
        self.pre_call("cusolverDnDestroy");
        Self::int_status("cusolverDnDestroy", self.stub.cusolver_dn_destroy(&h)?)
    }

    /// cusolverDnDgetrf_bufferSize.
    pub fn dgetrf_buffer_size(
        &mut self,
        h: u64,
        m: i32,
        n: i32,
        a: u64,
        lda: i32,
    ) -> ClientResult<i32> {
        self.pre_call("cusolverDnDgetrf_bufferSize");
        self.stub
            .cusolver_dn_dgetrf_buffer_size(&h, &m, &n, &a, &lda)?
            .into_result()
            .map_err(|c| ClientError::cuda("cusolverDnDgetrf_bufferSize", c))
    }

    /// cusolverDnDgetrf.
    #[allow(clippy::too_many_arguments)]
    pub fn dgetrf(
        &mut self,
        h: u64,
        m: i32,
        n: i32,
        a: u64,
        lda: i32,
        work: u64,
        ipiv: u64,
        info: u64,
    ) -> ClientResult<()> {
        self.pre_call("cusolverDnDgetrf");
        Self::int_status(
            "cusolverDnDgetrf",
            self.stub
                .cusolver_dn_dgetrf(&h, &m, &n, &a, &lda, &work, &ipiv, &info)?,
        )
    }

    /// cusolverDnDgetrs.
    #[allow(clippy::too_many_arguments)]
    pub fn dgetrs(
        &mut self,
        h: u64,
        trans: i32,
        n: i32,
        nrhs: i32,
        a: u64,
        lda: i32,
        ipiv: u64,
        b: u64,
        ldb: i32,
        info: u64,
    ) -> ClientResult<()> {
        self.pre_call("cusolverDnDgetrs");
        Self::int_status(
            "cusolverDnDgetrs",
            self.stub
                .cusolver_dn_dgetrs(&h, &trans, &n, &nrhs, &a, &lda, &ipiv, &b, &ldb, &info)?,
        )
    }

    // ---- cuFFT -----------------------------------------------------------

    /// cufftPlan1d (n must be a power of two; type is CUFFT_C2C/Z2Z).
    pub fn fft_plan_1d(&mut self, n: i32, kind: i32, batch: i32) -> ClientResult<u64> {
        self.pre_call("cufftPlan1d");
        self.stub
            .cufft_plan_1d(&n, &kind, &batch)?
            .into_result()
            .map_err(|c| ClientError::cuda("cufftPlan1d", c))
    }

    /// cufftDestroy.
    pub fn fft_destroy(&mut self, plan: u64) -> ClientResult<()> {
        self.pre_call("cufftDestroy");
        Self::int_status("cufftDestroy", self.stub.cufft_destroy(&plan)?)
    }

    /// cufftExecC2C.
    pub fn fft_exec_c2c(
        &mut self,
        plan: u64,
        idata: u64,
        odata: u64,
        direction: i32,
    ) -> ClientResult<()> {
        self.pre_call("cufftExecC2C");
        Self::int_status(
            "cufftExecC2C",
            self.stub
                .cufft_exec_c2c(&plan, &idata, &odata, &direction)?,
        )
    }

    /// cufftExecZ2Z.
    pub fn fft_exec_z2z(
        &mut self,
        plan: u64,
        idata: u64,
        odata: u64,
        direction: i32,
    ) -> ClientResult<()> {
        self.pre_call("cufftExecZ2Z");
        Self::int_status(
            "cufftExecZ2Z",
            self.stub
                .cufft_exec_z2z(&plan, &idata, &odata, &direction)?,
        )
    }

    // ---- server management (not counted as CUDA API calls) --------------

    /// Capture a checkpoint of the server-side GPU state.
    pub fn checkpoint(&mut self) -> ClientResult<Vec<u8>> {
        self.stub
            .ckpt_capture()?
            .into_result()
            .map_err(|c| ClientError::cuda("ckptCapture", c))
    }

    /// Restore a checkpoint.
    pub fn restore(&mut self, blob: &[u8]) -> ClientResult<()> {
        Self::int_status("ckptRestore", self.stub.ckpt_restore(blob)?)
    }

    /// Server-side statistics.
    pub fn server_stats(&mut self) -> ClientResult<ServerStats> {
        Ok(self.stub.srv_get_stats()?)
    }

    /// Reset server-side statistics.
    pub fn server_reset_stats(&mut self) -> ClientResult<()> {
        Self::int_status("srvResetStats", self.stub.srv_reset_stats()?)
    }

    /// Select the GPU-sharing scheduler (0 FIFO, 1 RR, 2 priority).
    pub fn set_scheduler(&mut self, policy: i32) -> ClientResult<()> {
        Self::int_status("srvSetScheduler", self.stub.srv_set_scheduler(&policy)?)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> ClientResult<()> {
        Ok(self.stub.rpc_null()?)
    }
}
