//! The raw virtualized CUDA API: typed wrappers over the generated stub,
//! with accounting and client-flavor behavior.

use crate::ccompat::{launch_compat_marshal, LAUNCH_COMPAT_NS, TIRPC_CALL_NS};
use crate::env::ClientFlavor;
use crate::error::{ClientError, ClientResult};
use crate::stats::ApiStats;
use cricket_proto::{
    cricket_v1, BatchResult, CricketV1Client, DeviceProp, MemInfo, RpcDim3, ServerStats,
};
use oncrpc::{BatchBuilder, BatchPolicy, BatchStats, FlushReason, StripePool, BATCH_SKIPPED};
use simnet::SimClock;
use std::sync::Arc;

/// H2D copies at or below this size may ride inside a command batch;
/// larger payloads flush the batch and take the ordinary scatter-gather
/// path so a bulk transfer never sits behind a deferral watermark.
pub const BATCH_INLINE_HTOD_MAX: usize = 16 * 1024;

/// H2D payloads at or above this size are scanned for all-zero pages;
/// when the zero-elided form is strictly smaller it travels as
/// `CUDA_MEMCPY_HTOD_SPARSE` instead (one page is the smallest payload
/// the codec can win on).
pub const SPARSE_MIN: usize = oncrpc::sparse::SPARSE_PAGE;

/// Default minimum copy size that fans out across a stripe pool, when
/// one is attached. Well above [`BATCH_INLINE_HTOD_MAX`], so striping
/// never competes with batching and small ops keep the untouched
/// single-connection fast path.
pub const STRIPE_MIN: usize = 1024 * 1024;

/// Client-side coalescing state: the pending batch plus the flush policy
/// and telemetry, and the api name of every recorded op so a failed
/// status index maps back to the originating call.
struct BatchState {
    builder: BatchBuilder,
    policy: BatchPolicy,
    stats: BatchStats,
    apis: Vec<&'static str>,
}

/// The Cricket client: one connection to a Cricket server.
pub struct CricketClient {
    stub: CricketV1Client,
    flavor: ClientFlavor,
    /// Present in simulated mode: client-side host work (launch-compat
    /// marshalling, libtirpc overhead, PRNG init) is charged here.
    clock: Option<Arc<SimClock>>,
    /// Accounting.
    pub stats: ApiStats,
    /// Command coalescing, when enabled (`None` = every call is eager).
    batch: Option<BatchState>,
    /// Multi-connection striping pool, when attached.
    stripes: Option<StripePool>,
    /// Minimum copy size that stripes (only meaningful with a pool).
    stripe_min: usize,
    /// Adaptive zero-page elision of H2D payloads (on by default; the
    /// dense path is byte-identical either way).
    sparse: bool,
    /// Scratch buffer for sparse payload encoding, reused across calls.
    sparse_scratch: Vec<u8>,
}

impl CricketClient {
    /// Wrap a transport with the given client flavor.
    pub fn new(
        transport: Box<dyn oncrpc::Transport>,
        flavor: ClientFlavor,
        clock: Option<Arc<SimClock>>,
    ) -> Self {
        Self {
            stub: CricketV1Client::new(transport),
            flavor,
            clock,
            stats: ApiStats::default(),
            batch: None,
            stripes: None,
            stripe_min: STRIPE_MIN,
            sparse: true,
            sparse_scratch: Vec::new(),
        }
    }

    /// [`Self::new`] without the box at the call site.
    pub fn over(
        transport: impl oncrpc::Transport + 'static,
        flavor: ClientFlavor,
        clock: Option<Arc<SimClock>>,
    ) -> Self {
        Self::new(Box::new(transport), flavor, clock)
    }

    /// Connect to a Cricket deployment — a single server or a fleet
    /// directory — with the native-Linux client flavor (wall-clock time).
    /// The single client entry point; see [`crate::Endpoint`].
    pub fn connect(endpoint: &crate::Endpoint) -> ClientResult<Self> {
        let (t, _addr) = endpoint.connect_transport()?;
        Ok(Self::over(t, ClientFlavor::RustRpcLib, None))
    }

    // ---- command coalescing -------------------------------------------

    /// Enable adaptive command coalescing with the default policy: async,
    /// non-result-bearing calls are recorded into a batch and flushed as
    /// one `CRICKET_BATCH_EXEC` round trip at the next sync point, depth
    /// watermark, or byte budget.
    pub fn enable_batching(&mut self) {
        self.enable_batching_with(BatchPolicy::default());
    }

    /// Enable coalescing with an explicit flush policy.
    pub fn enable_batching_with(&mut self, policy: BatchPolicy) {
        self.batch = Some(BatchState {
            builder: BatchBuilder::new(),
            policy,
            stats: BatchStats::default(),
            apis: Vec::new(),
        });
    }

    /// Flush any pending batch and turn coalescing off.
    pub fn disable_batching(&mut self) -> ClientResult<()> {
        self.flush_batch()?;
        self.batch = None;
        Ok(())
    }

    /// True if coalescing is on.
    pub fn batching_enabled(&self) -> bool {
        self.batch.is_some()
    }

    /// Coalescing telemetry, when batching is enabled.
    pub fn batch_stats(&self) -> Option<&BatchStats> {
        self.batch.as_ref().map(|b| &b.stats)
    }

    /// RPC round trips per batchable op: 1.0 when coalescing is off or
    /// has seen no ops, below 1.0 once ops share round trips.
    pub fn rpcs_per_op(&self) -> f64 {
        self.batch_stats().map_or(1.0, |s| s.rpcs_per_op())
    }

    /// Flush the pending batch, if any, as one `CRICKET_BATCH_EXEC` RPC.
    /// Called implicitly by every sync point and non-batchable call; call
    /// it explicitly to bound deferral without a sync.
    pub fn flush_batch(&mut self) -> ClientResult<()> {
        self.flush_batch_as(FlushReason::Sync)
    }

    fn flush_batch_as(&mut self, reason: FlushReason) -> ClientResult<()> {
        let Some(state) = self.batch.as_mut() else {
            return Ok(());
        };
        if state.builder.is_empty() {
            return Ok(());
        }
        let ops = state.builder.len();
        // The flush RPC is retryable under at-most-once only if every
        // recorded sub-op was declared idempotent.
        let idem = state.builder.all_idempotent();
        let mut apis = std::mem::take(&mut state.apis);
        let body = state.builder.finish();
        state.policy.on_flush(reason, ops);
        state.stats.record_flush(reason, ops);
        let sent = self.send_batch(idem, &body, &apis);
        let state = self.batch.as_mut().expect("batch state present");
        state.builder.recycle(body);
        apis.clear();
        state.apis = apis;
        sent
    }

    /// One flush round trip: the whole batch body travels as a single
    /// deferred scatter-gather segment, so recorded payloads are copied
    /// once (at record time) and never again on the client.
    fn send_batch(&mut self, idem: bool, body: &[u8], apis: &[&'static str]) -> ClientResult<()> {
        let receipt = {
            let reply = self
                .stub
                .rpc
                .call_raw_sg_tagged(cricket_v1::CRICKET_BATCH_EXEC, idem, |enc| {
                    enc.put_opaque_deferred(body);
                })
                .map_err(ClientError::Rpc)?;
            let mut dec = xdr::XdrDecoder::new(&reply);
            let result: BatchResult = xdr::Xdr::decode(&mut dec).map_err(oncrpc::RpcError::from)?;
            dec.finish().map_err(oncrpc::RpcError::from)?;
            result
        };
        match receipt {
            BatchResult::Receipt(r) => {
                for (index, &code) in r.statuses.iter().enumerate() {
                    if code != 0 && code != BATCH_SKIPPED {
                        return Err(ClientError::Batch {
                            code,
                            api: apis.get(index).copied().unwrap_or("cricketBatchExec"),
                            index,
                        });
                    }
                }
                Ok(())
            }
            BatchResult::Default(code) => Err(ClientError::cuda("cricketBatchExec", code)),
        }
    }

    /// Accounting for a call that is being *recorded* rather than sent:
    /// same per-call bookkeeping as [`Self::pre_call`] but no flush.
    fn pre_record(&mut self, api: &'static str) {
        self.stats.count(api);
        if self.flavor == ClientFlavor::CTirpc {
            self.charge(TIRPC_CALL_NS);
        }
    }

    /// Record bookkeeping plus the policy check: flush if the op just
    /// recorded reached the depth watermark or the byte budget.
    fn after_record(&mut self) -> ClientResult<()> {
        let state = self.batch.as_mut().expect("batch state present");
        match state
            .policy
            .should_flush(state.builder.len(), state.builder.body_bytes())
        {
            Some(reason) => self.flush_batch_as(reason),
            None => Ok(()),
        }
    }

    // ---- wire efficiency: striping and sparse encoding ----------------

    /// Attach a stripe pool: copies of at least the stripe threshold
    /// (default [`STRIPE_MIN`], see [`Self::set_stripe_threshold`]) shard
    /// across the pool's lanes as independent stripe RPCs and reassemble
    /// positionally at the far end. Smaller ops keep the single-connection
    /// fast path untouched.
    pub fn enable_striping(&mut self, pool: StripePool) {
        self.stripes = Some(pool);
    }

    /// Detach the stripe pool, returning it so the lanes can be reused.
    pub fn disable_striping(&mut self) -> Option<StripePool> {
        self.stripes.take()
    }

    /// True if a stripe pool is attached.
    pub fn striping_enabled(&self) -> bool {
        self.stripes.is_some()
    }

    /// Override the minimum copy size that stripes.
    pub fn set_stripe_threshold(&mut self, bytes: usize) {
        self.stripe_min = bytes.max(1);
    }

    /// Enable or disable adaptive sparse (zero-page-elided) H2D payload
    /// encoding. On by default; purely a wire-format choice — the bytes
    /// that land in device memory are identical either way.
    pub fn set_sparse(&mut self, on: bool) {
        self.sparse = on;
    }

    /// The simulated clock, if any (examples print virtual times from it).
    pub fn clock(&self) -> Option<&Arc<SimClock>> {
        self.clock.as_ref()
    }

    /// The client flavor.
    pub fn flavor(&self) -> ClientFlavor {
        self.flavor
    }

    /// Override the ONC RPC maximum fragment size (fragmentation ablation).
    pub fn set_max_fragment(&mut self, max_fragment: usize) {
        self.stub.rpc.set_max_fragment(max_fragment);
    }

    /// The underlying RPC client, for resilience configuration: retry
    /// policy, per-call deadline, reconnect hook, client credential.
    pub fn rpc(&mut self) -> &mut oncrpc::RpcClient {
        &mut self.stub.rpc
    }

    /// Charge client-side host nanoseconds (simulated mode only).
    pub fn charge(&self, ns: u64) {
        if let Some(c) = &self.clock {
            c.advance(ns);
        }
    }

    fn pre_call(&mut self, api: &'static str) -> ClientResult<()> {
        // Any eager RPC is an ordering barrier: recorded ops must reach
        // the server before it, so a pending batch flushes first. A
        // deferred sub-op's failure therefore surfaces here, as a
        // [`ClientError::Batch`] naming the originating call.
        self.flush_batch_as(FlushReason::Sync)?;
        self.pre_record(api);
        Ok(())
    }

    fn int_status(api: &'static str, code: i32) -> ClientResult<()> {
        if code == 0 {
            Ok(())
        } else {
            Err(ClientError::cuda(api, code))
        }
    }

    // ---- device management ------------------------------------------

    /// cudaGetDeviceCount.
    pub fn device_count(&mut self) -> ClientResult<i32> {
        self.pre_call("cudaGetDeviceCount")?;
        self.stub
            .cuda_get_device_count()?
            .into_result()
            .map_err(|c| ClientError::cuda("cudaGetDeviceCount", c))
    }

    /// cudaGetDeviceProperties.
    pub fn device_properties(&mut self, ordinal: i32) -> ClientResult<DeviceProp> {
        self.pre_call("cudaGetDeviceProperties")?;
        match self.stub.cuda_get_device_properties(&ordinal)? {
            cricket_proto::PropResult::Prop(p) => Ok(p),
            cricket_proto::PropResult::Default(c) => {
                Err(ClientError::cuda("cudaGetDeviceProperties", c))
            }
        }
    }

    /// cudaSetDevice.
    pub fn set_device(&mut self, ordinal: i32) -> ClientResult<()> {
        self.pre_call("cudaSetDevice")?;
        Self::int_status("cudaSetDevice", self.stub.cuda_set_device(&ordinal)?)
    }

    /// cudaGetDevice.
    pub fn get_device(&mut self) -> ClientResult<i32> {
        self.pre_call("cudaGetDevice")?;
        self.stub
            .cuda_get_device()?
            .into_result()
            .map_err(|c| ClientError::cuda("cudaGetDevice", c))
    }

    /// cudaDeviceSynchronize.
    pub fn device_synchronize(&mut self) -> ClientResult<()> {
        self.pre_call("cudaDeviceSynchronize")?;
        Self::int_status(
            "cudaDeviceSynchronize",
            self.stub.cuda_device_synchronize()?,
        )
    }

    /// cudaDeviceReset.
    pub fn device_reset(&mut self) -> ClientResult<()> {
        self.pre_call("cudaDeviceReset")?;
        Self::int_status("cudaDeviceReset", self.stub.cuda_device_reset()?)
    }

    // ---- memory -------------------------------------------------------

    /// cudaMalloc.
    pub fn malloc(&mut self, size: u64) -> ClientResult<u64> {
        self.pre_call("cudaMalloc")?;
        self.stub
            .cuda_malloc(&size)?
            .into_result()
            .map_err(|c| ClientError::cuda("cudaMalloc", c))
    }

    /// cudaFree.
    pub fn free(&mut self, ptr: u64) -> ClientResult<()> {
        self.pre_call("cudaFree")?;
        Self::int_status("cudaFree", self.stub.cuda_free(&ptr)?)
    }

    /// cudaMemcpy host→device. The payload travels borrowed end to end:
    /// the stub defers it into a scatter-gather record, so the only copies
    /// left are inside the transport and the server's device write.
    ///
    /// With coalescing enabled, copies up to [`BATCH_INLINE_HTOD_MAX`]
    /// bytes are recorded as *async* descriptors inside the batch (the
    /// payload is staged into the batch body, so the caller's buffer is
    /// free immediately); larger copies flush the batch and go eagerly.
    ///
    /// Two wire optimizations apply transparently, in priority order:
    /// payloads of at least [`SPARSE_MIN`] bytes whose zero-page-elided
    /// form is strictly smaller travel as `CUDA_MEMCPY_HTOD_SPARSE`;
    /// otherwise, payloads of at least the stripe threshold fan out
    /// across an attached stripe pool. Either way the device write is
    /// byte-identical to the plain path.
    pub fn memcpy_htod(&mut self, dst: u64, data: &[u8]) -> ClientResult<()> {
        if self.sparse && data.len() >= SPARSE_MIN {
            let mut scratch = std::mem::take(&mut self.sparse_scratch);
            let won =
                oncrpc::sparse::encode_adaptive(data, oncrpc::sparse::SPARSE_PAGE, &mut scratch);
            let r = won
                .map(|(wire, zeros)| self.send_htod_sparse(dst, data.len(), &scratch, wire, zeros));
            scratch.clear();
            self.sparse_scratch = scratch;
            if let Some(r) = r {
                return r;
            }
        }
        if self.stripes.is_some() && data.len() >= self.stripe_min {
            return self.memcpy_htod_striped(dst, data);
        }
        if self.batch.is_some() && data.len() <= BATCH_INLINE_HTOD_MAX {
            self.pre_record("cudaMemcpy(H2D)");
            self.stats.bytes_h2d += data.len() as u64;
            oncrpc::telemetry::add_transferred(data.len());
            oncrpc::telemetry::add_wire_raw(data.len());
            oncrpc::telemetry::add_wire_sent(data.len());
            let state = self.batch.as_mut().expect("batch state present");
            CricketV1Client::cuda_memcpy_htod_record(&mut state.builder, &dst, data);
            state.apis.push("cudaMemcpy(H2D)");
            return self.after_record();
        }
        self.pre_call("cudaMemcpy(H2D)")?;
        self.stats.bytes_h2d += data.len() as u64;
        oncrpc::telemetry::add_transferred(data.len());
        oncrpc::telemetry::add_wire_raw(data.len());
        oncrpc::telemetry::add_wire_sent(data.len());
        Self::int_status("cudaMemcpy(H2D)", self.stub.cuda_memcpy_htod(&dst, data)?)
    }

    /// Ship an already-encoded sparse H2D payload: recorded into the batch
    /// when the *encoded* blob fits the inline budget, eager
    /// `CUDA_MEMCPY_HTOD_SPARSE` otherwise. Transfer accounting counts the
    /// raw length — the codec changes wire bytes, not the copy.
    fn send_htod_sparse(
        &mut self,
        dst: u64,
        raw_len: usize,
        blob: &[u8],
        wire: usize,
        zeros: usize,
    ) -> ClientResult<()> {
        oncrpc::telemetry::add_wire_raw(raw_len);
        oncrpc::telemetry::add_wire_sent(wire);
        oncrpc::telemetry::add_sparse_pages_elided(zeros as u64);
        if self.batch.is_some() && blob.len() <= BATCH_INLINE_HTOD_MAX {
            self.pre_record("cudaMemcpy(H2D)");
            self.stats.bytes_h2d += raw_len as u64;
            oncrpc::telemetry::add_transferred(raw_len);
            let state = self.batch.as_mut().expect("batch state present");
            CricketV1Client::cuda_memcpy_htod_sparse_record(&mut state.builder, &dst, blob);
            state.apis.push("cudaMemcpy(H2D)");
            return self.after_record();
        }
        self.pre_call("cudaMemcpy(H2D)")?;
        self.stats.bytes_h2d += raw_len as u64;
        oncrpc::telemetry::add_transferred(raw_len);
        Self::int_status(
            "cudaMemcpy(H2D)",
            self.stub.cuda_memcpy_htod_sparse(&dst, blob)?,
        )
    }

    /// Shard one large H2D copy across the stripe pool as independent
    /// `CUDA_MEMCPY_HTOD_STRIPE` calls applied at `dst + offset`. The
    /// replay cache plus the lanes' disjoint xid spaces give exactly-once
    /// per stripe under retries.
    fn memcpy_htod_striped(&mut self, dst: u64, data: &[u8]) -> ClientResult<()> {
        self.pre_call("cudaMemcpy(H2D)")?;
        self.stats.bytes_h2d += data.len() as u64;
        oncrpc::telemetry::add_transferred(data.len());
        oncrpc::telemetry::add_wire_raw(data.len());
        oncrpc::telemetry::add_wire_sent(data.len());
        let pool = self.stripes.as_mut().expect("stripe pool attached");
        let mut bad: Option<i32> = None;
        let sent = pool.scatter(data, |lane, offset, seq, chunk| {
            let reply =
                lane.call_raw_sg_tagged(cricket_v1::CUDA_MEMCPY_HTOD_STRIPE, false, |enc| {
                    enc.put_u64(dst);
                    enc.put_u64(offset);
                    enc.put_u32(seq);
                    enc.put_opaque_deferred(chunk);
                })?;
            let mut dec = xdr::XdrDecoder::new(&reply);
            let code = dec.get_i32().map_err(oncrpc::RpcError::from)?;
            dec.finish().map_err(oncrpc::RpcError::from)?;
            if code != 0 {
                // Abort the remaining stripes; the CUDA code is what gets
                // reported — this marker error never escapes the function.
                bad = Some(code);
                return Err(oncrpc::RpcError::ConnectionClosed);
            }
            Ok(())
        });
        match (bad, sent) {
            (Some(code), _) => Err(ClientError::cuda("cudaMemcpy(H2D)", code)),
            (None, Err(e)) => Err(ClientError::Rpc(e)),
            (None, Ok(())) => Ok(()),
        }
    }

    /// cudaMemcpy device→host. Reads of at least the stripe threshold fan
    /// out across an attached stripe pool; the result is byte-identical to
    /// the single-connection read.
    pub fn memcpy_dtoh(&mut self, src: u64, len: u64) -> ClientResult<Vec<u8>> {
        if self.stripes.is_some() && len as usize >= self.stripe_min {
            return self.memcpy_dtoh_striped(src, len);
        }
        self.pre_call("cudaMemcpy(D2H)")?;
        let out = self
            .stub
            .cuda_memcpy_dtoh(&src, &len)?
            .into_result()
            .map_err(|c| ClientError::cuda("cudaMemcpy(D2H)", c))?;
        self.stats.bytes_d2h += out.len() as u64;
        oncrpc::telemetry::add_transferred(out.len());
        Ok(out)
    }

    /// Gather one large D2H copy as independent `CUDA_MEMCPY_DTOH_STRIPE`
    /// reads from `src + offset`, reassembled positionally client-side.
    fn memcpy_dtoh_striped(&mut self, src: u64, len: u64) -> ClientResult<Vec<u8>> {
        self.pre_call("cudaMemcpy(D2H)")?;
        let mut out = vec![0u8; len as usize];
        let pool = self.stripes.as_mut().expect("stripe pool attached");
        let mut bad: Option<i32> = None;
        let got = pool.gather(&mut out, |lane, offset, seq, chunk| {
            let want = chunk.len();
            let reply =
                lane.call_raw_sg_tagged(cricket_v1::CUDA_MEMCPY_DTOH_STRIPE, true, |enc| {
                    enc.put_u64(src);
                    enc.put_u64(offset);
                    enc.put_u64(want as u64);
                    enc.put_u32(seq);
                })?;
            let mut dec = xdr::XdrDecoder::new(&reply);
            let err = dec.get_i32().map_err(oncrpc::RpcError::from)?;
            if err != 0 {
                bad = Some(err);
                return Err(oncrpc::RpcError::ConnectionClosed);
            }
            let data = dec.get_opaque_ref().map_err(oncrpc::RpcError::from)?;
            dec.finish().map_err(oncrpc::RpcError::from)?;
            if data.len() != want {
                return Err(oncrpc::RpcError::Xdr(xdr::XdrError::Custom(format!(
                    "stripe returned {} bytes, wanted {want}",
                    data.len()
                ))));
            }
            chunk.copy_from_slice(data);
            Ok(())
        });
        match (bad, got) {
            (Some(code), _) => return Err(ClientError::cuda("cudaMemcpy(D2H)", code)),
            (None, Err(e)) => return Err(ClientError::Rpc(e)),
            (None, Ok(())) => {}
        }
        self.stats.bytes_d2h += out.len() as u64;
        oncrpc::telemetry::add_transferred(out.len());
        Ok(out)
    }

    /// cudaMemcpy device→device.
    pub fn memcpy_dtod(&mut self, dst: u64, src: u64, len: u64) -> ClientResult<()> {
        if self.batch.is_some() {
            self.pre_record("cudaMemcpy(D2D)");
            let state = self.batch.as_mut().expect("batch state present");
            CricketV1Client::cuda_memcpy_dtod_record(&mut state.builder, &dst, &src, &len);
            state.apis.push("cudaMemcpy(D2D)");
            return self.after_record();
        }
        self.pre_call("cudaMemcpy(D2D)")?;
        Self::int_status(
            "cudaMemcpy(D2D)",
            self.stub.cuda_memcpy_dtod(&dst, &src, &len)?,
        )
    }

    /// cudaMemset.
    pub fn memset(&mut self, ptr: u64, value: i32, len: u64) -> ClientResult<()> {
        if self.batch.is_some() {
            self.pre_record("cudaMemset");
            let state = self.batch.as_mut().expect("batch state present");
            CricketV1Client::cuda_memset_record(&mut state.builder, &ptr, &value, &len);
            state.apis.push("cudaMemset");
            return self.after_record();
        }
        self.pre_call("cudaMemset")?;
        Self::int_status("cudaMemset", self.stub.cuda_memset(&ptr, &value, &len)?)
    }

    /// cudaGetLastError.
    pub fn get_last_error(&mut self) -> ClientResult<i32> {
        self.pre_call("cudaGetLastError")?;
        self.stub
            .cuda_get_last_error()?
            .into_result()
            .map_err(|c| ClientError::cuda("cudaGetLastError", c))
    }

    /// cudaMemGetInfo.
    pub fn mem_get_info(&mut self) -> ClientResult<MemInfo> {
        self.pre_call("cudaMemGetInfo")?;
        match self.stub.cuda_mem_get_info()? {
            cricket_proto::MemInfoResult::Info(i) => Ok(i),
            cricket_proto::MemInfoResult::Default(c) => Err(ClientError::cuda("cudaMemGetInfo", c)),
        }
    }

    // ---- modules and launches -----------------------------------------

    /// cuModuleLoadData: ship a cubin image read on the client side to the
    /// server (the paper's §3.3 loading path).
    pub fn module_load(&mut self, image: &[u8]) -> ClientResult<u64> {
        self.pre_call("cuModuleLoadData")?;
        self.stats.bytes_h2d += image.len() as u64;
        oncrpc::telemetry::add_transferred(image.len());
        self.stub
            .cu_module_load_data(image)?
            .into_result()
            .map_err(|c| ClientError::cuda("cuModuleLoadData", c))
    }

    /// cuModuleGetFunction.
    pub fn module_get_function(&mut self, module: u64, name: &str) -> ClientResult<u64> {
        self.pre_call("cuModuleGetFunction")?;
        self.stub
            .cu_module_get_function(&module, name)?
            .into_result()
            .map_err(|c| ClientError::cuda("cuModuleGetFunction", c))
    }

    /// cuModuleUnload.
    pub fn module_unload(&mut self, module: u64) -> ClientResult<()> {
        self.pre_call("cuModuleUnload")?;
        Self::int_status("cuModuleUnload", self.stub.cu_module_unload(&module)?)
    }

    /// cuLaunchKernel. The C flavor pays for the `<<<...>>>`-compatibility
    /// marshalling the Rust implementation omits (paper §4.2).
    pub fn launch_kernel(
        &mut self,
        func: u64,
        grid: RpcDim3,
        block: RpcDim3,
        shared_mem: u32,
        stream: u64,
        params: &[u8],
    ) -> ClientResult<()> {
        if self.batch.is_some() {
            self.pre_record("cuLaunchKernel");
            self.stats.launches += 1;
            let staged;
            let params = if self.flavor == ClientFlavor::CTirpc {
                staged = launch_compat_marshal(params);
                self.charge(LAUNCH_COMPAT_NS);
                &staged[..]
            } else {
                params
            };
            let state = self.batch.as_mut().expect("batch state present");
            CricketV1Client::cuda_launch_kernel_record(
                &mut state.builder,
                &func,
                &grid,
                &block,
                &shared_mem,
                &stream,
                params,
            );
            state.apis.push("cuLaunchKernel");
            return self.after_record();
        }
        self.pre_call("cuLaunchKernel")?;
        self.stats.launches += 1;
        let staged;
        let params = if self.flavor == ClientFlavor::CTirpc {
            staged = launch_compat_marshal(params);
            self.charge(LAUNCH_COMPAT_NS);
            &staged[..]
        } else {
            params
        };
        Self::int_status(
            "cuLaunchKernel",
            self.stub
                .cuda_launch_kernel(&func, &grid, &block, &shared_mem, &stream, params)?,
        )
    }

    // ---- streams and events -------------------------------------------

    /// cudaStreamCreate.
    pub fn stream_create(&mut self) -> ClientResult<u64> {
        self.pre_call("cudaStreamCreate")?;
        self.stub
            .cuda_stream_create()?
            .into_result()
            .map_err(|c| ClientError::cuda("cudaStreamCreate", c))
    }

    /// cudaStreamDestroy.
    pub fn stream_destroy(&mut self, h: u64) -> ClientResult<()> {
        self.pre_call("cudaStreamDestroy")?;
        Self::int_status("cudaStreamDestroy", self.stub.cuda_stream_destroy(&h)?)
    }

    /// cudaStreamSynchronize.
    pub fn stream_synchronize(&mut self, h: u64) -> ClientResult<()> {
        self.pre_call("cudaStreamSynchronize")?;
        Self::int_status(
            "cudaStreamSynchronize",
            self.stub.cuda_stream_synchronize(&h)?,
        )
    }

    /// cudaEventCreate.
    pub fn event_create(&mut self) -> ClientResult<u64> {
        self.pre_call("cudaEventCreate")?;
        self.stub
            .cuda_event_create()?
            .into_result()
            .map_err(|c| ClientError::cuda("cudaEventCreate", c))
    }

    /// cudaEventRecord.
    pub fn event_record(&mut self, event: u64, stream: u64) -> ClientResult<()> {
        if self.batch.is_some() {
            self.pre_record("cudaEventRecord");
            let state = self.batch.as_mut().expect("batch state present");
            CricketV1Client::cuda_event_record_record(&mut state.builder, &event, &stream);
            state.apis.push("cudaEventRecord");
            return self.after_record();
        }
        self.pre_call("cudaEventRecord")?;
        Self::int_status(
            "cudaEventRecord",
            self.stub.cuda_event_record(&event, &stream)?,
        )
    }

    /// cudaEventSynchronize.
    pub fn event_synchronize(&mut self, event: u64) -> ClientResult<()> {
        self.pre_call("cudaEventSynchronize")?;
        Self::int_status(
            "cudaEventSynchronize",
            self.stub.cuda_event_synchronize(&event)?,
        )
    }

    /// cudaEventElapsedTime (milliseconds).
    pub fn event_elapsed_ms(&mut self, start: u64, stop: u64) -> ClientResult<f32> {
        self.pre_call("cudaEventElapsedTime")?;
        self.stub
            .cuda_event_elapsed_time(&start, &stop)?
            .into_result()
            .map_err(|c| ClientError::cuda("cudaEventElapsedTime", c))
    }

    /// cudaEventDestroy.
    pub fn event_destroy(&mut self, event: u64) -> ClientResult<()> {
        self.pre_call("cudaEventDestroy")?;
        Self::int_status("cudaEventDestroy", self.stub.cuda_event_destroy(&event)?)
    }

    // ---- cuBLAS ---------------------------------------------------------

    /// cublasCreate.
    pub fn blas_create(&mut self) -> ClientResult<u64> {
        self.pre_call("cublasCreate")?;
        self.stub
            .cublas_create()?
            .into_result()
            .map_err(|c| ClientError::cuda("cublasCreate", c))
    }

    /// cublasDestroy.
    pub fn blas_destroy(&mut self, h: u64) -> ClientResult<()> {
        self.pre_call("cublasDestroy")?;
        Self::int_status("cublasDestroy", self.stub.cublas_destroy(&h)?)
    }

    /// cublasSgemm (column-major).
    #[allow(clippy::too_many_arguments)]
    pub fn sgemm(
        &mut self,
        h: u64,
        transa: i32,
        transb: i32,
        m: i32,
        n: i32,
        k: i32,
        alpha: f32,
        a: u64,
        lda: i32,
        b: u64,
        ldb: i32,
        beta: f32,
        c: u64,
        ldc: i32,
    ) -> ClientResult<()> {
        self.pre_call("cublasSgemm")?;
        Self::int_status(
            "cublasSgemm",
            self.stub.cublas_sgemm(
                &h, &transa, &transb, &m, &n, &k, &alpha, &a, &lda, &b, &ldb, &beta, &c, &ldc,
            )?,
        )
    }

    /// cublasDgemm (column-major).
    #[allow(clippy::too_many_arguments)]
    pub fn dgemm(
        &mut self,
        h: u64,
        transa: i32,
        transb: i32,
        m: i32,
        n: i32,
        k: i32,
        alpha: f64,
        a: u64,
        lda: i32,
        b: u64,
        ldb: i32,
        beta: f64,
        c: u64,
        ldc: i32,
    ) -> ClientResult<()> {
        self.pre_call("cublasDgemm")?;
        Self::int_status(
            "cublasDgemm",
            self.stub.cublas_dgemm(
                &h, &transa, &transb, &m, &n, &k, &alpha, &a, &lda, &b, &ldb, &beta, &c, &ldc,
            )?,
        )
    }

    // ---- cuSolverDn ------------------------------------------------------

    /// cusolverDnCreate.
    pub fn solver_create(&mut self) -> ClientResult<u64> {
        self.pre_call("cusolverDnCreate")?;
        self.stub
            .cusolver_dn_create()?
            .into_result()
            .map_err(|c| ClientError::cuda("cusolverDnCreate", c))
    }

    /// cusolverDnDestroy.
    pub fn solver_destroy(&mut self, h: u64) -> ClientResult<()> {
        self.pre_call("cusolverDnDestroy")?;
        Self::int_status("cusolverDnDestroy", self.stub.cusolver_dn_destroy(&h)?)
    }

    /// cusolverDnDgetrf_bufferSize.
    pub fn dgetrf_buffer_size(
        &mut self,
        h: u64,
        m: i32,
        n: i32,
        a: u64,
        lda: i32,
    ) -> ClientResult<i32> {
        self.pre_call("cusolverDnDgetrf_bufferSize")?;
        self.stub
            .cusolver_dn_dgetrf_buffer_size(&h, &m, &n, &a, &lda)?
            .into_result()
            .map_err(|c| ClientError::cuda("cusolverDnDgetrf_bufferSize", c))
    }

    /// cusolverDnDgetrf.
    #[allow(clippy::too_many_arguments)]
    pub fn dgetrf(
        &mut self,
        h: u64,
        m: i32,
        n: i32,
        a: u64,
        lda: i32,
        work: u64,
        ipiv: u64,
        info: u64,
    ) -> ClientResult<()> {
        self.pre_call("cusolverDnDgetrf")?;
        Self::int_status(
            "cusolverDnDgetrf",
            self.stub
                .cusolver_dn_dgetrf(&h, &m, &n, &a, &lda, &work, &ipiv, &info)?,
        )
    }

    /// cusolverDnDgetrs.
    #[allow(clippy::too_many_arguments)]
    pub fn dgetrs(
        &mut self,
        h: u64,
        trans: i32,
        n: i32,
        nrhs: i32,
        a: u64,
        lda: i32,
        ipiv: u64,
        b: u64,
        ldb: i32,
        info: u64,
    ) -> ClientResult<()> {
        self.pre_call("cusolverDnDgetrs")?;
        Self::int_status(
            "cusolverDnDgetrs",
            self.stub
                .cusolver_dn_dgetrs(&h, &trans, &n, &nrhs, &a, &lda, &ipiv, &b, &ldb, &info)?,
        )
    }

    // ---- cuFFT -----------------------------------------------------------

    /// cufftPlan1d (n must be a power of two; type is CUFFT_C2C/Z2Z).
    pub fn fft_plan_1d(&mut self, n: i32, kind: i32, batch: i32) -> ClientResult<u64> {
        self.pre_call("cufftPlan1d")?;
        self.stub
            .cufft_plan_1d(&n, &kind, &batch)?
            .into_result()
            .map_err(|c| ClientError::cuda("cufftPlan1d", c))
    }

    /// cufftDestroy.
    pub fn fft_destroy(&mut self, plan: u64) -> ClientResult<()> {
        self.pre_call("cufftDestroy")?;
        Self::int_status("cufftDestroy", self.stub.cufft_destroy(&plan)?)
    }

    /// cufftExecC2C.
    pub fn fft_exec_c2c(
        &mut self,
        plan: u64,
        idata: u64,
        odata: u64,
        direction: i32,
    ) -> ClientResult<()> {
        if self.batch.is_some() {
            self.pre_record("cufftExecC2C");
            let state = self.batch.as_mut().expect("batch state present");
            CricketV1Client::cufft_exec_c2c_record(
                &mut state.builder,
                &plan,
                &idata,
                &odata,
                &direction,
            );
            state.apis.push("cufftExecC2C");
            return self.after_record();
        }
        self.pre_call("cufftExecC2C")?;
        Self::int_status(
            "cufftExecC2C",
            self.stub
                .cufft_exec_c2c(&plan, &idata, &odata, &direction)?,
        )
    }

    /// cufftExecZ2Z.
    pub fn fft_exec_z2z(
        &mut self,
        plan: u64,
        idata: u64,
        odata: u64,
        direction: i32,
    ) -> ClientResult<()> {
        if self.batch.is_some() {
            self.pre_record("cufftExecZ2Z");
            let state = self.batch.as_mut().expect("batch state present");
            CricketV1Client::cufft_exec_z2z_record(
                &mut state.builder,
                &plan,
                &idata,
                &odata,
                &direction,
            );
            state.apis.push("cufftExecZ2Z");
            return self.after_record();
        }
        self.pre_call("cufftExecZ2Z")?;
        Self::int_status(
            "cufftExecZ2Z",
            self.stub
                .cufft_exec_z2z(&plan, &idata, &odata, &direction)?,
        )
    }

    // ---- server management (not counted as CUDA API calls) --------------
    //
    // These still flush any pending batch first: a checkpoint must see
    // recorded work, and server statistics must not race deferred ops.

    /// Capture a checkpoint of the server-side GPU state.
    pub fn checkpoint(&mut self) -> ClientResult<Vec<u8>> {
        self.flush_batch()?;
        self.stub
            .ckpt_capture()?
            .into_result()
            .map_err(|c| ClientError::cuda("ckptCapture", c))
    }

    /// Restore a checkpoint.
    pub fn restore(&mut self, blob: &[u8]) -> ClientResult<()> {
        self.flush_batch()?;
        Self::int_status("ckptRestore", self.stub.ckpt_restore(blob)?)
    }

    /// Server-side statistics.
    pub fn server_stats(&mut self) -> ClientResult<ServerStats> {
        self.flush_batch()?;
        Ok(self.stub.srv_get_stats()?)
    }

    /// Reset server-side statistics.
    pub fn server_reset_stats(&mut self) -> ClientResult<()> {
        self.flush_batch()?;
        Self::int_status("srvResetStats", self.stub.srv_reset_stats()?)
    }

    /// Select the GPU-sharing scheduler (0 FIFO, 1 RR, 2 priority, 3 WFQ).
    pub fn set_scheduler(&mut self, policy: i32) -> ClientResult<()> {
        self.flush_batch()?;
        Self::int_status("srvSetScheduler", self.stub.srv_set_scheduler(&policy)?)
    }

    /// Set a session's QoS parameters (WFQ weight, priority, device-time
    /// rate quota, resident-bytes quota). Zeroed quota fields mean
    /// "unlimited"; a zero weight is clamped to 1 server-side.
    pub fn set_qos(&mut self, params: &cricket_proto::QosParams) -> ClientResult<()> {
        self.flush_batch()?;
        Self::int_status("cricketQosSet", self.stub.cricket_qos_set(params)?)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> ClientResult<()> {
        self.flush_batch()?;
        Ok(self.stub.rpc_null()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::EnvConfig;
    use crate::sim::SimSetup;

    fn batched_and_eager_clients() -> (SimSetup, CricketClient, SimSetup, CricketClient) {
        let sim_b = SimSetup::new();
        let mut batched = sim_b.client(EnvConfig::RustyHermit);
        batched.enable_batching();
        let sim_e = SimSetup::new();
        let eager = sim_e.client(EnvConfig::RustyHermit);
        (sim_b, batched, sim_e, eager)
    }

    /// Same op sequence, same device state — but the batched client needs
    /// far fewer RPC round trips than the eager one.
    #[test]
    fn batched_ops_match_eager_state_with_fewer_rpcs() {
        let (_sb, mut batched, _se, mut eager) = batched_and_eager_clients();
        let run = |c: &mut CricketClient| -> ClientResult<Vec<u8>> {
            let ptr = c.malloc(256)?;
            for i in 0..16u64 {
                c.memset(ptr + i * 16, i as i32, 16)?;
            }
            c.memcpy_htod(ptr, &[0xAB; 8])?;
            let out = c.memcpy_dtoh(ptr, 256)?;
            c.free(ptr)?;
            Ok(out)
        };
        let out_b = run(&mut batched).unwrap();
        let out_e = run(&mut eager).unwrap();
        assert_eq!(out_b, out_e);
        assert_eq!(&out_b[0..8], &[0xAB; 8]);
        assert_eq!(out_b[16], 1);
        let calls_b = batched.rpc().stats().calls;
        let calls_e = eager.rpc().stats().calls;
        // 17 async ops coalesced into one flush: malloc + flush + dtoh +
        // free = 4 round trips vs. 20 eager.
        assert!(
            calls_b * 4 <= calls_e,
            "batched {calls_b} vs eager {calls_e}"
        );
        let stats = batched.batch_stats().unwrap().clone();
        assert_eq!(stats.ops_batched, 17);
        assert_eq!(stats.batches, 1);
        assert!(batched.rpcs_per_op() < 0.25, "{}", batched.rpcs_per_op());
    }

    /// A failed sub-op surfaces at the flush point as a typed error naming
    /// the originating call and its batch index; later ops of the slice
    /// are skipped, and the builder is reusable afterwards.
    #[test]
    fn batch_failure_names_the_originating_call() {
        let sim = SimSetup::new();
        let mut c = sim.client(EnvConfig::RustyHermit);
        c.enable_batching();
        let ptr = c.malloc(64).unwrap();
        c.memset(ptr, 1, 64).unwrap();
        c.memset(0xdead_beef_0000, 2, 8).unwrap(); // recorded, fails at flush
        c.memset(ptr, 3, 64).unwrap(); // same slice: skipped
        let err = c.device_synchronize().unwrap_err();
        match err {
            ClientError::Batch { api, index, code } => {
                assert_eq!(api, "cudaMemset");
                assert_eq!(index, 1);
                assert_ne!(code, 0);
            }
            other => panic!("expected batch error, got {other}"),
        }
        // The failed flush did not poison the connection or the builder.
        c.memset(ptr, 4, 64).unwrap();
        c.device_synchronize().unwrap();
        assert_eq!(c.memcpy_dtoh(ptr, 1).unwrap(), vec![4]);
        c.free(ptr).unwrap();
    }

    /// Sync-after-every-op load shrinks the adaptive watermark to 1 so
    /// single ops stop being deferred (latency guard).
    #[test]
    fn low_offered_load_degenerates_to_eager_flushes() {
        let sim = SimSetup::new();
        let mut c = sim.client(EnvConfig::RustyHermit);
        c.enable_batching_with(BatchPolicy::new(64, 48 * 1024));
        let ptr = c.malloc(64).unwrap();
        for _ in 0..8 {
            c.memset(ptr, 0, 64).unwrap();
            c.device_synchronize().unwrap();
        }
        let stats = c.batch_stats().unwrap();
        // After the watermark collapses, records flush immediately (depth
        // reason at watermark 1) instead of waiting for the sync.
        assert!(
            stats.flush_depth >= 1,
            "watermark never collapsed: {stats:?}"
        );
        c.free(ptr).unwrap();
    }

    /// Large H2D copies bypass the batch (and flush what was pending) so
    /// bulk transfers never wait behind a deferral watermark.
    #[test]
    fn large_htod_bypasses_the_batch() {
        let sim = SimSetup::new();
        let mut c = sim.client(EnvConfig::RustyHermit);
        c.enable_batching();
        let big = vec![7u8; BATCH_INLINE_HTOD_MAX + 1];
        let ptr = c.malloc(big.len() as u64).unwrap();
        c.memset(ptr, 0, 64).unwrap(); // pending
        c.memcpy_htod(ptr, &big).unwrap(); // flushes, then goes eagerly
        let stats = c.batch_stats().unwrap();
        assert_eq!(stats.ops_batched, 1, "only the memset was deferred");
        assert_eq!(c.memcpy_dtoh(ptr, 4).unwrap(), vec![7; 4]);
        c.free(ptr).unwrap();
    }
}
