//! Safe, Rust-idiomatic GPU API.
//!
//! The paper (§3.4): *"To additionally support the Rust concept of
//! lifetimes for GPU memory, we wrap the cudaMalloc and cudaFree APIs,
//! making GPU allocations work like local heap allocations. This way, we
//! can guarantee the absence of use-after-free and double-free errors for
//! the CUDA allocation API."*
//!
//! * [`DeviceBuffer<T>`] frees its allocation on drop and borrows the
//!   [`Context`], so it cannot outlive the connection.
//! * [`Module`], [`Stream`] and [`Event`] release their handles on drop.
//! * Element types implement [`DeviceCopy`], which fixes the on-device
//!   byte layout (little-endian, like the real GPU).

use crate::error::ClientResult;
use crate::raw::CricketClient;
use crate::Dim3;
use std::cell::RefCell;
use std::marker::PhantomData;

/// Types that can be copied to/from device memory.
pub trait DeviceCopy: Copy {
    /// Size of one element on the device.
    const SIZE: usize;
    /// Serialize a host slice into device byte layout.
    fn to_device_bytes(host: &[Self]) -> Vec<u8>;
    /// Deserialize device bytes into host values.
    fn from_device_bytes(bytes: &[u8]) -> Vec<Self>;
}

macro_rules! device_copy_impl {
    ($ty:ty, $size:expr) => {
        impl DeviceCopy for $ty {
            const SIZE: usize = $size;
            fn to_device_bytes(host: &[Self]) -> Vec<u8> {
                let mut out = Vec::with_capacity(host.len() * $size);
                for v in host {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                out
            }
            fn from_device_bytes(bytes: &[u8]) -> Vec<Self> {
                bytes
                    .chunks_exact($size)
                    .map(|c| <$ty>::from_le_bytes(c.try_into().unwrap()))
                    .collect()
            }
        }
    };
}

device_copy_impl!(u8, 1);
device_copy_impl!(i32, 4);
device_copy_impl!(u32, 4);
device_copy_impl!(u64, 8);
device_copy_impl!(i64, 8);
device_copy_impl!(f32, 4);
device_copy_impl!(f64, 8);

/// A connection to a (possibly remote) GPU through Cricket.
///
/// Interior mutability lets `&Context`-borrowing resources (buffers,
/// modules) issue RPCs; the client is single-threaded per context, like a
/// CUDA context.
pub struct Context {
    client: RefCell<CricketClient>,
}

impl Context {
    /// Wrap an existing raw client.
    pub fn from_client(client: CricketClient) -> Self {
        Self {
            client: RefCell::new(client),
        }
    }

    /// Connect to a Cricket deployment — a single server
    /// ([`crate::Endpoint::Addr`]) or a fleet directory
    /// ([`crate::Endpoint::Directory`], resolved once with failover).
    pub fn connect(endpoint: &crate::Endpoint) -> ClientResult<Self> {
        Ok(Self::from_client(CricketClient::connect(endpoint)?))
    }

    /// Connect to one `cricket-server` over TCP (native-Linux client
    /// flavor, wall-clock time). Shorthand for [`Self::connect`] with
    /// [`crate::Endpoint::Addr`].
    pub fn connect_tcp(addr: &str) -> ClientResult<Self> {
        Self::connect(&crate::Endpoint::addr(addr)?)
    }

    /// Run `f` with the raw client (escape hatch for APIs without safe
    /// wrappers).
    pub fn with_raw<R>(&self, f: impl FnOnce(&mut CricketClient) -> R) -> R {
        f(&mut self.client.borrow_mut())
    }

    /// Snapshot of the client-side accounting.
    pub fn stats(&self) -> crate::ApiStats {
        self.client.borrow().stats.clone()
    }

    /// Number of visible devices.
    pub fn device_count(&self) -> ClientResult<i32> {
        self.client.borrow_mut().device_count()
    }

    /// Properties of device `ordinal`.
    pub fn device_properties(&self, ordinal: i32) -> ClientResult<cricket_proto::DeviceProp> {
        self.client.borrow_mut().device_properties(ordinal)
    }

    /// Wait for all device work.
    pub fn synchronize(&self) -> ClientResult<()> {
        self.client.borrow_mut().device_synchronize()
    }

    /// Allocate an uninitialized (zeroed) buffer of `len` elements.
    pub fn alloc<T: DeviceCopy>(&self, len: usize) -> ClientResult<DeviceBuffer<'_, T>> {
        let ptr = self.client.borrow_mut().malloc((len * T::SIZE) as u64)?;
        Ok(DeviceBuffer {
            ctx: self,
            ptr,
            len,
            _marker: PhantomData,
        })
    }

    /// Allocate and upload.
    pub fn upload<T: DeviceCopy>(&self, host: &[T]) -> ClientResult<DeviceBuffer<'_, T>> {
        let buf = self.alloc(host.len())?;
        buf.copy_from_slice(host)?;
        Ok(buf)
    }

    /// Load a kernel module from a cubin image.
    pub fn load_module(&self, image: &[u8]) -> ClientResult<Module<'_>> {
        let handle = self.client.borrow_mut().module_load(image)?;
        Ok(Module { ctx: self, handle })
    }

    /// Create a stream.
    pub fn stream(&self) -> ClientResult<Stream<'_>> {
        let handle = self.client.borrow_mut().stream_create()?;
        Ok(Stream { ctx: self, handle })
    }

    /// Create an event.
    pub fn event(&self) -> ClientResult<Event<'_>> {
        let handle = self.client.borrow_mut().event_create()?;
        Ok(Event { ctx: self, handle })
    }

    /// Launch `func` with the given geometry and marshalled parameters.
    pub fn launch(
        &self,
        func: &Function<'_>,
        grid: Dim3,
        block: Dim3,
        shared_mem: u32,
        stream: Option<&Stream<'_>>,
        params: &[u8],
    ) -> ClientResult<()> {
        self.client.borrow_mut().launch_kernel(
            func.handle,
            grid,
            block,
            shared_mem,
            stream.map(|s| s.handle).unwrap_or(0),
            params,
        )
    }
}

/// A device allocation of `len` elements of `T`, freed on drop.
pub struct DeviceBuffer<'ctx, T: DeviceCopy> {
    ctx: &'ctx Context,
    ptr: u64,
    len: usize,
    _marker: PhantomData<T>,
}

impl<'ctx, T: DeviceCopy> DeviceBuffer<'ctx, T> {
    /// Raw device pointer (for kernel parameters).
    pub fn ptr(&self) -> u64 {
        self.ptr
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when zero-length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Byte size on the device.
    pub fn byte_len(&self) -> u64 {
        (self.len * T::SIZE) as u64
    }

    /// Upload `host` (must match the buffer length).
    pub fn copy_from_slice(&self, host: &[T]) -> ClientResult<()> {
        assert_eq!(host.len(), self.len, "host slice length mismatch");
        self.ctx
            .client
            .borrow_mut()
            .memcpy_htod(self.ptr, &T::to_device_bytes(host))
    }

    /// Download the buffer contents.
    pub fn copy_to_vec(&self) -> ClientResult<Vec<T>> {
        let bytes = self
            .ctx
            .client
            .borrow_mut()
            .memcpy_dtoh(self.ptr, self.byte_len())?;
        Ok(T::from_device_bytes(&bytes))
    }

    /// Fill with a byte value (cudaMemset).
    pub fn memset(&self, value: u8) -> ClientResult<()> {
        self.ctx
            .client
            .borrow_mut()
            .memset(self.ptr, value as i32, self.byte_len())
    }
}

impl<T: DeviceCopy> std::fmt::Debug for DeviceBuffer<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceBuffer")
            .field("ptr", &format_args!("{:#x}", self.ptr))
            .field("len", &self.len)
            .field("elem_size", &T::SIZE)
            .finish()
    }
}

impl<T: DeviceCopy> Drop for DeviceBuffer<'_, T> {
    fn drop(&mut self) {
        // Freeing through Drop is what guarantees no use-after-free and no
        // double-free: the handle cannot be observed after this point.
        let _ = self.ctx.client.borrow_mut().free(self.ptr);
    }
}

/// A loaded kernel module, unloaded on drop.
pub struct Module<'ctx> {
    ctx: &'ctx Context,
    handle: u64,
}

impl<'ctx> Module<'ctx> {
    /// Resolve a kernel by name.
    pub fn function(&self, name: &str) -> ClientResult<Function<'ctx>> {
        let handle = self
            .ctx
            .client
            .borrow_mut()
            .module_get_function(self.handle, name)?;
        Ok(Function {
            handle,
            _marker: PhantomData,
        })
    }

    /// Raw module handle.
    pub fn handle(&self) -> u64 {
        self.handle
    }
}

impl std::fmt::Debug for Module<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Module")
            .field("handle", &self.handle)
            .finish()
    }
}

impl Drop for Module<'_> {
    fn drop(&mut self) {
        let _ = self.ctx.client.borrow_mut().module_unload(self.handle);
    }
}

/// A kernel function handle (borrows the module's context lifetime).
#[derive(Debug, Clone, Copy)]
pub struct Function<'ctx> {
    handle: u64,
    _marker: PhantomData<&'ctx Context>,
}

impl Function<'_> {
    /// Raw function handle.
    pub fn handle(&self) -> u64 {
        self.handle
    }
}

/// A CUDA stream, destroyed on drop.
pub struct Stream<'ctx> {
    ctx: &'ctx Context,
    handle: u64,
}

impl Stream<'_> {
    /// Wait for all work enqueued on this stream.
    pub fn synchronize(&self) -> ClientResult<()> {
        self.ctx.client.borrow_mut().stream_synchronize(self.handle)
    }

    /// Raw stream handle.
    pub fn handle(&self) -> u64 {
        self.handle
    }
}

impl std::fmt::Debug for Stream<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stream")
            .field("handle", &self.handle)
            .finish()
    }
}

impl Drop for Stream<'_> {
    fn drop(&mut self) {
        let _ = self.ctx.client.borrow_mut().stream_destroy(self.handle);
    }
}

/// A CUDA event, destroyed on drop.
pub struct Event<'ctx> {
    ctx: &'ctx Context,
    handle: u64,
}

impl Event<'_> {
    /// Record this event on a stream (None = default stream).
    pub fn record(&self, stream: Option<&Stream<'_>>) -> ClientResult<()> {
        self.ctx
            .client
            .borrow_mut()
            .event_record(self.handle, stream.map(|s| s.handle).unwrap_or(0))
    }

    /// Wait until the event has occurred.
    pub fn synchronize(&self) -> ClientResult<()> {
        self.ctx.client.borrow_mut().event_synchronize(self.handle)
    }

    /// Device milliseconds between `self` and `stop`.
    pub fn elapsed_ms(&self, stop: &Event<'_>) -> ClientResult<f32> {
        self.ctx
            .client
            .borrow_mut()
            .event_elapsed_ms(self.handle, stop.handle)
    }
}

impl std::fmt::Debug for Event<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Event")
            .field("handle", &self.handle)
            .finish()
    }
}

impl Drop for Event<'_> {
    fn drop(&mut self) {
        let _ = self.ctx.client.borrow_mut().event_destroy(self.handle);
    }
}
