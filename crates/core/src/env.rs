//! The evaluated configurations (paper Table 1) and extras.

use unikernel::{Guest, GuestKind};

/// Which client library flavor issues the CUDA calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientFlavor {
    /// The original C applications over libtirpc.
    CTirpc,
    /// The paper's Rust applications over RPC-Lib (this crate).
    RustRpcLib,
}

/// One evaluated configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnvConfig {
    /// Table 1 "C": C app, Rocky Linux, no hypervisor, native network.
    CNative,
    /// Table 1 "Rust": Rust app, Rocky Linux, no hypervisor, native network.
    RustNative,
    /// Table 1 "Linux VM": Rust app, Fedora VM, QEMU, virtio.
    LinuxVm,
    /// Table 1 "Unikraft": Rust app, Unikraft, QEMU, virtio.
    Unikraft,
    /// Table 1 "Hermit": Rust app, RustyHermit, QEMU, virtio.
    RustyHermit,
    /// Ablation: RustyHermit without the paper's §3.1 virtio features.
    RustyHermitLegacy,
    /// Ablation (§4.2): Linux VM with TSO/checksum/scatter-gather disabled.
    LinuxVmNoOffload,
    /// Future work (§5): RustyHermit with TCP segmentation offload.
    RustyHermitTso,
    /// Future work (§4.2): RustyHermit with a vDPA data path (hardware
    /// queues, no vm-exits on the data path).
    RustyHermitVdpa,
}

/// A row of the paper's Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    /// Configuration name.
    pub name: &'static str,
    /// Application language.
    pub app: &'static str,
    /// Operating system.
    pub os: &'static str,
    /// Hypervisor ("-" for native).
    pub hypervisor: &'static str,
    /// Network path.
    pub network: &'static str,
}

impl EnvConfig {
    /// The five rows of Table 1, in paper order.
    pub fn table1() -> [EnvConfig; 5] {
        [
            EnvConfig::CNative,
            EnvConfig::RustNative,
            EnvConfig::LinuxVm,
            EnvConfig::Unikraft,
            EnvConfig::RustyHermit,
        ]
    }

    /// Short label used in figures ("C", "Rust", "Linux VM", ...).
    pub fn label(&self) -> &'static str {
        match self {
            EnvConfig::CNative => "C",
            EnvConfig::RustNative => "Rust",
            EnvConfig::LinuxVm => "Linux VM",
            EnvConfig::Unikraft => "Unikraft",
            EnvConfig::RustyHermit => "Hermit",
            EnvConfig::RustyHermitLegacy => "Hermit (legacy virtio)",
            EnvConfig::LinuxVmNoOffload => "Linux VM (no offloads)",
            EnvConfig::RustyHermitTso => "Hermit (+TSO, future work)",
            EnvConfig::RustyHermitVdpa => "Hermit (+vDPA, future work)",
        }
    }

    /// The guest environment (network behavior).
    pub fn guest(&self) -> Guest {
        match self {
            EnvConfig::CNative | EnvConfig::RustNative => Guest::new(GuestKind::NativeLinux),
            EnvConfig::LinuxVm => Guest::new(GuestKind::LinuxVm),
            EnvConfig::Unikraft => Guest::new(GuestKind::Unikraft),
            EnvConfig::RustyHermit => Guest::new(GuestKind::RustyHermit),
            EnvConfig::RustyHermitLegacy => Guest::new(GuestKind::RustyHermitLegacy),
            EnvConfig::LinuxVmNoOffload => Guest::linux_vm_offloads_disabled(),
            EnvConfig::RustyHermitTso => Guest::new(GuestKind::RustyHermitTso),
            EnvConfig::RustyHermitVdpa => Guest::new(GuestKind::RustyHermit).with_vdpa(),
        }
    }

    /// The client library flavor.
    pub fn flavor(&self) -> ClientFlavor {
        match self {
            EnvConfig::CNative => ClientFlavor::CTirpc,
            _ => ClientFlavor::RustRpcLib,
        }
    }

    /// Table 1 row contents.
    pub fn row(&self) -> Table1Row {
        match self {
            EnvConfig::CNative => Table1Row {
                name: "C",
                app: "C",
                os: "Rocky Linux",
                hypervisor: "-",
                network: "native",
            },
            EnvConfig::RustNative => Table1Row {
                name: "Rust",
                app: "Rust",
                os: "Rocky Linux",
                hypervisor: "-",
                network: "native",
            },
            EnvConfig::LinuxVm => Table1Row {
                name: "Linux VM",
                app: "Rust",
                os: "Fedora VM",
                hypervisor: "QEMU",
                network: "virtio",
            },
            EnvConfig::Unikraft => Table1Row {
                name: "Unikraft",
                app: "Rust",
                os: "Unikraft",
                hypervisor: "QEMU",
                network: "virtio",
            },
            EnvConfig::RustyHermit => Table1Row {
                name: "Hermit",
                app: "Rust",
                os: "Hermit",
                hypervisor: "QEMU",
                network: "virtio",
            },
            EnvConfig::RustyHermitLegacy => Table1Row {
                name: "Hermit (legacy)",
                app: "Rust",
                os: "Hermit (pre-paper virtio)",
                hypervisor: "QEMU",
                network: "virtio",
            },
            EnvConfig::LinuxVmNoOffload => Table1Row {
                name: "Linux VM (no offloads)",
                app: "Rust",
                os: "Fedora VM",
                hypervisor: "QEMU",
                network: "virtio (TSO/csum/SG off)",
            },
            EnvConfig::RustyHermitTso => Table1Row {
                name: "Hermit (+TSO)",
                app: "Rust",
                os: "Hermit (future virtio)",
                hypervisor: "QEMU",
                network: "virtio + TSO",
            },
            EnvConfig::RustyHermitVdpa => Table1Row {
                name: "Hermit (+vDPA)",
                app: "Rust",
                os: "Hermit",
                hypervisor: "QEMU",
                network: "vDPA hardware queues",
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let rows: Vec<Table1Row> = EnvConfig::table1().iter().map(|c| c.row()).collect();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].app, "C");
        assert!(rows.iter().skip(1).all(|r| r.app == "Rust"));
        assert_eq!(rows[2].hypervisor, "QEMU");
        assert!(rows[0].network == "native" && rows[1].network == "native");
        assert!(rows[2..].iter().all(|r| r.network == "virtio"));
    }

    #[test]
    fn only_c_config_uses_tirpc() {
        assert_eq!(EnvConfig::CNative.flavor(), ClientFlavor::CTirpc);
        for c in [
            EnvConfig::RustNative,
            EnvConfig::LinuxVm,
            EnvConfig::Unikraft,
            EnvConfig::RustyHermit,
        ] {
            assert_eq!(c.flavor(), ClientFlavor::RustRpcLib);
        }
    }

    #[test]
    fn guests_match_kinds() {
        assert_eq!(EnvConfig::CNative.guest().kind, GuestKind::NativeLinux);
        assert_eq!(EnvConfig::RustNative.guest().kind, GuestKind::NativeLinux);
        assert_eq!(EnvConfig::RustyHermit.guest().kind, GuestKind::RustyHermit);
        assert!(!EnvConfig::LinuxVmNoOffload.guest().costs.offloads.tso);
    }
}
