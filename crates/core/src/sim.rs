//! Wiring for the simulated deployment: client + in-process Cricket server
//! on a shared virtual clock.

use crate::env::EnvConfig;
use crate::raw::CricketClient;
use crate::safe::Context;
use cricket_server::{make_rpc_server, CricketServer, ServerConfig, SimTransport};
use simnet::SimClock;
use std::sync::Arc;

/// Handles to the simulated deployment shared by one or more clients.
pub struct SimSetup {
    /// The virtual clock everything charges.
    pub clock: Arc<SimClock>,
    /// The Cricket server.
    pub server: Arc<CricketServer>,
    /// The RPC layer wrapping the server.
    pub rpc: Arc<oncrpc::RpcServer>,
}

impl SimSetup {
    /// Create a fresh simulated GPU node.
    pub fn new() -> Self {
        Self::with_config(ServerConfig::default())
    }

    /// Create a simulated GPU node with a custom server configuration
    /// (e.g. a smaller device: simulated allocations are backed by host
    /// memory, so tests exercising OOM paths should shrink the device).
    pub fn with_config(cfg: ServerConfig) -> Self {
        let clock = SimClock::new();
        let server = CricketServer::new(cfg, Arc::clone(&clock));
        let rpc = make_rpc_server(Arc::clone(&server));
        Self { clock, server, rpc }
    }

    /// Connect a client in the given environment to this GPU node.
    pub fn client(&self, env: EnvConfig) -> CricketClient {
        let transport =
            SimTransport::new(Arc::clone(&self.rpc), env.guest(), Arc::clone(&self.clock));
        CricketClient::new(
            Box::new(transport),
            env.flavor(),
            Some(Arc::clone(&self.clock)),
        )
    }

    /// Connect a safe-API context in the given environment.
    pub fn context(&self, env: EnvConfig) -> Context {
        Context::from_client(self.client(env))
    }

    /// Build one simulated transport to this GPU node (the raw material for
    /// chaos wrappers and reconnect hooks).
    pub fn transport(&self, env: EnvConfig) -> Box<dyn oncrpc::Transport> {
        Box::new(SimTransport::new(
            Arc::clone(&self.rpc),
            env.guest(),
            Arc::clone(&self.clock),
        ))
    }

    /// Connect a client with an attached [`oncrpc::StripePool`] of `lanes`
    /// simulated connections. Each lane charges wire time to a private
    /// clock; a [`SimStripeTimer`] aligns the lane clocks with the shared
    /// clock around each striped transfer, so the lanes' wire time
    /// overlaps — the virtual-time model of N independent connections.
    pub fn striped_client(&self, env: EnvConfig, lanes: usize) -> CricketClient {
        let mut client = self.client(env);
        client.enable_striping(self.stripe_pool(env, lanes));
        client
    }

    /// Build a stripe pool of `lanes` simulated connections to this GPU
    /// node, wired to overlap in virtual time (see [`SimStripeTimer`]).
    pub fn stripe_pool(&self, env: EnvConfig, lanes: usize) -> oncrpc::StripePool {
        self.stripe_pool_with(env, lanes, |t, _| t)
    }

    /// [`Self::stripe_pool`] with a per-lane transport wrapper: `wrap`
    /// receives each lane's simulated transport and its lane index, and
    /// may interpose (e.g. an [`oncrpc::FaultyTransport`] with a per-lane
    /// fault schedule for chaos tests).
    pub fn stripe_pool_with(
        &self,
        env: EnvConfig,
        lanes: usize,
        mut wrap: impl FnMut(Box<dyn oncrpc::Transport>, usize) -> Box<dyn oncrpc::Transport>,
    ) -> oncrpc::StripePool {
        let clocks: Vec<Arc<SimClock>> = (0..lanes).map(|_| SimClock::new()).collect();
        let clients = clocks
            .iter()
            .enumerate()
            .map(|(i, clock)| {
                let t = SimTransport::new(Arc::clone(&self.rpc), env.guest(), Arc::clone(clock));
                oncrpc::RpcClient::new(
                    wrap(Box::new(t), i),
                    cricket_proto::CRICKET_CUDA,
                    cricket_proto::CRICKET_V1,
                )
            })
            .collect();
        let mut pool = oncrpc::StripePool::new(clients);
        pool.set_timer(SimStripeTimer {
            shared: Arc::clone(&self.clock),
            lanes: clocks,
        });
        pool
    }

    /// Connect a client whose RPC records pass through a fault-injecting
    /// [`oncrpc::FaultyTransport`] driven by the shared `plan`.
    pub fn chaos_client(&self, env: EnvConfig, plan: &oncrpc::SharedFaultPlan) -> CricketClient {
        let inner = self.transport(env);
        let faulty = oncrpc::FaultyTransport::new(inner, Arc::clone(plan));
        CricketClient::new(
            Box::new(faulty),
            env.flavor(),
            Some(Arc::clone(&self.clock)),
        )
    }

    /// Current virtual time in seconds.
    pub fn seconds(&self) -> f64 {
        self.clock.now_ns() as f64 / 1e9
    }
}

impl Default for SimSetup {
    fn default() -> Self {
        Self::new()
    }
}

/// Lane-overlap timer for simulated stripe pools. Simulated transports
/// charge wire time to a clock; left on the shared clock, N lanes would
/// serialize. Instead each lane owns a private clock: `begin` fast-forwards
/// every lane to the shared "now", `commit` folds the slowest lane back into
/// the shared clock — so a striped transfer costs the *maximum* lane time,
/// not the sum, exactly like N physically independent connections.
pub struct SimStripeTimer {
    shared: Arc<SimClock>,
    lanes: Vec<Arc<SimClock>>,
}

impl oncrpc::StripeTimer for SimStripeTimer {
    fn begin(&mut self) {
        let now = self.shared.now_ns();
        for lane in &self.lanes {
            lane.advance_to(now);
        }
    }

    fn commit(&mut self) {
        if let Some(max) = self.lanes.iter().map(|l| l.now_ns()).max() {
            self.shared.advance_to(max);
        }
    }
}

/// One-call convenience: a context in `env` on a fresh GPU node.
pub fn simulated(env: EnvConfig) -> (Context, SimSetup) {
    let setup = SimSetup::new();
    let ctx = setup.context(env);
    (ctx, setup)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::safe::DeviceBuffer;
    use crate::{CubinBuilder, ParamBuilder};

    #[test]
    fn end_to_end_vector_add_through_safe_api() {
        let (ctx, setup) = simulated(EnvConfig::RustyHermit);
        assert_eq!(ctx.device_count().unwrap(), 4);

        // "nvcc": build a cubin, optionally compressed, load via cuModule.
        let image = CubinBuilder::new()
            .kernel("vectorAdd", &[8, 8, 8, 4])
            .code(b"device code")
            .build(true);
        let module = ctx.load_module(&image).unwrap();
        let f = module.function("vectorAdd").unwrap();

        let n = 1024usize;
        let a: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..n).map(|i| 2.0 * i as f32).collect();
        let da = ctx.upload(&a).unwrap();
        let db = ctx.upload(&b).unwrap();
        let dc: DeviceBuffer<'_, f32> = ctx.alloc(n).unwrap();

        let params = ParamBuilder::new()
            .ptr(dc.ptr())
            .ptr(da.ptr())
            .ptr(db.ptr())
            .u32(n as u32)
            .build();
        ctx.launch(&f, (4, 1, 1).into(), (256, 1, 1).into(), 0, None, &params)
            .unwrap();
        ctx.synchronize().unwrap();
        let c = dc.copy_to_vec().unwrap();
        for (i, v) in c.iter().enumerate().take(n) {
            assert_eq!(*v, 3.0 * i as f32);
        }
        assert!(setup.seconds() > 0.0);
        let stats = ctx.stats();
        assert!(stats.api_calls >= 8);
        assert_eq!(stats.launches, 1);
    }

    #[test]
    fn drop_order_frees_cleanly_and_server_sees_all_frees() {
        let (ctx, setup) = simulated(EnvConfig::RustNative);
        {
            let _a = ctx.alloc::<f64>(100).unwrap();
            let _b = ctx.alloc::<u32>(100).unwrap();
            let _m = ctx
                .load_module(&CubinBuilder::new().kernel("empty", &[]).build(false))
                .unwrap();
            let _s = ctx.stream().unwrap();
            let _e = ctx.event().unwrap();
        } // everything drops here
        let stats = ctx.stats();
        assert_eq!(stats.per_api["cudaMalloc"], 2);
        assert_eq!(stats.per_api["cudaFree"], 2);
        assert_eq!(stats.per_api["cuModuleUnload"], 1);
        assert_eq!(stats.per_api["cudaStreamDestroy"], 1);
        assert_eq!(stats.per_api["cudaEventDestroy"], 1);
        let _ = setup;
    }

    #[test]
    fn events_measure_kernel_time() {
        let (ctx, _setup) = simulated(EnvConfig::LinuxVm);
        let module = ctx
            .load_module(&CubinBuilder::new().kernel("empty", &[]).build(false))
            .unwrap();
        let f = module.function("empty").unwrap();
        let start = ctx.event().unwrap();
        let stop = ctx.event().unwrap();
        start.record(None).unwrap();
        for _ in 0..100 {
            ctx.launch(&f, (1, 1, 1).into(), (1, 1, 1).into(), 0, None, &[])
                .unwrap();
        }
        stop.record(None).unwrap();
        let ms = start.elapsed_ms(&stop).unwrap();
        // Events measure the device timeline *including* the idle gaps while
        // each launch RPC crosses the network (~60 µs per launch in a VM),
        // exactly like real CUDA events around a latency-bound loop:
        // 100 launches ≈ 100 × (launch RPC + 3.5 µs kernel) ≈ 5–10 ms.
        assert!((1.0..30.0).contains(&ms), "elapsed {ms} ms");
    }

    #[test]
    fn multiple_clients_share_one_gpu_node() {
        let setup = SimSetup::new();
        let c1 = setup.context(EnvConfig::RustyHermit);
        let c2 = setup.context(EnvConfig::Unikraft);
        let b1 = c1.upload(&[1.0f32; 64]).unwrap();
        let b2 = c2.upload(&[2.0f32; 64]).unwrap();
        // Distinct allocations on the same device.
        assert_ne!(b1.ptr(), b2.ptr());
        let stats = c1.with_raw(|r| r.server_stats()).unwrap();
        assert_eq!(stats.active_sessions, 1, "sessions are per make_rpc_server");
        assert!(stats.total_calls >= 2);
    }

    #[test]
    fn upload_download_preserves_f64_precision() {
        let (ctx, _s) = simulated(EnvConfig::Unikraft);
        let data = vec![1.0f64 / 3.0, f64::MIN_POSITIVE, 1e300, -0.0];
        let buf = ctx.upload(&data).unwrap();
        let back = buf.copy_to_vec().unwrap();
        assert_eq!(
            back.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            data.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
