//! Cricket client runtime — the reproduction of the paper's contribution.
//!
//! Applications use this crate the way the paper's applications use
//! RPC-Lib + the Cricket virtualization layer: CUDA API calls are issued
//! against a local API and forwarded via ONC RPC to a Cricket server that
//! owns the GPU. Three layers are offered:
//!
//! * [`raw`] — one function per CUDA API (`cuda_malloc`, `cuda_memcpy_*`,
//!   `cu_module_load`, `cuda_launch_kernel`, cuBLAS/cuSolver entry points),
//!   thin typed wrappers over the generated RPC stub, with **API-call and
//!   byte accounting** ([`stats::ApiStats`]) reproducing the paper's §4.1
//!   call-count table.
//! * [`safe`] — the Rust-idiomatic layer the paper highlights: *"we wrap
//!   the cudaMalloc and cudaFree APIs, making GPU allocations work like
//!   local heap allocations. This way, we can guarantee the absence of
//!   use-after-free and double-free errors"* (§3.4). [`safe::DeviceBuffer`]
//!   frees on drop and is lifetime-bound to its [`safe::Context`];
//!   [`safe::Module`], [`safe::Stream`] and [`safe::Event`] behave likewise.
//! * [`env`] — the five Table-1 configurations. [`env::EnvConfig`] selects
//!   the guest environment (network behavior) and the client flavor
//!   (Rust RPC-Lib vs. C libtirpc, whose extra kernel-launch marshalling
//!   and slower `rand()` the paper measures).
//!
//! [`sim`] wires a client to an in-process server over the simulated
//! network path; `Context::connect_tcp` talks to a real `cricket-server`
//! process instead — the same application code runs on either, mirroring
//! the paper's "without any code modification, we can run the same Rust
//! application … directly on Linux".

pub mod ccompat;
pub mod endpoint;
pub mod env;
pub mod error;
pub mod raw;
pub mod safe;
pub mod sim;
pub mod stats;

pub use endpoint::{Endpoint, Placement};
pub use env::EnvConfig;
pub use error::{ClientError, ClientResult};
pub use raw::{CricketClient, BATCH_INLINE_HTOD_MAX};

/// Coalescing policy/telemetry re-exports (configure via
/// [`CricketClient::enable_batching_with`], read via
/// [`CricketClient::batch_stats`]).
pub use oncrpc::{BatchPolicy, BatchStats};
pub use safe::{Context, DeviceBuffer, Event, Function, Module, Stream};
pub use stats::{ApiStats, CopyStats};

/// Grid/block geometry re-export (wire type from the protocol).
pub use cricket_proto::RpcDim3 as Dim3;

/// Kernel-parameter marshalling re-export ("void* args[]" stand-in).
pub use vgpu::kernels::ParamBuilder;

/// Cubin construction re-export — the `nvcc` stand-in examples use to
/// produce kernel images they then load via the `cuModule` API.
pub use vgpu::module::CubinBuilder;
