//! GPU fleet layer: shard a Cricket deployment across N servers behind a
//! portmap shard directory.
//!
//! The paper's endgame is many lightweight unikernel guests sharing remote
//! GPUs; the scale win comes from multiplexing virtualized GPUs across a
//! *fleet* of servers, not one. Placement must stay off the per-call path
//! (RPCAcc's thin-RPC lesson), so it happens exactly once, at connect time:
//!
//! ```text
//!   client ──(1) SHARD_DUMP──▶ directory (oncrpc::Portmap over TCP)
//!     │                            ▲ heartbeats: LoadReport {free_mem,
//!     │ (2) rank by Placement      │   total_mem, served_ns, sessions}
//!     │ (3) SHARD_ASSIGN winner    │
//!     └─(4) RPC directly──▶ shard i (cricket_server::ServerBuilder)
//! ```
//!
//! After step 4 the client talks to its shard over the normal zero-copy
//! path; the directory never sees another byte from it. Failover: the
//! ranked candidate list from step 2 is kept, so if the winner's listener
//! is down (crashed shard, stale directory entry) the client just tries
//! the next-best candidate.
//!
//! What lives here:
//! * [`Placement`] — connect-time placement policies over
//!   [`oncrpc::ShardEntry`] load reports;
//! * [`ShardDirectory`] — the client-side directory view (dump → rank →
//!   assign);
//! * [`Fleet`] / [`FleetBuilder`] — a directory plus N
//!   [`cricket_server::ServeHandle`] shards with graceful-stop vs
//!   crash-kill lifecycle;
//! * [`rebalance_plan`] — a pure planner computing session moves that
//!   would even out shard load (the hook the future live-migration item
//!   plugs into).

use std::collections::BTreeSet;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cricket_proto::{CricketV1Client, IntResult};
use cricket_server::{
    MigKind, SchedulerPolicy, ServeHandle, ServeMode, ServerBuilder, ServerConfig,
};
use oncrpc::portmap::client::PortmapClient;
pub use oncrpc::{LoadReport, ShardEntry};
use oncrpc::{Portmap, RpcResult, TcpTransport};

/// Connect-time placement policy: given the directory's shard load
/// reports, in what order should a new session try shards?
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Placement {
    /// Spread sessions: fewest effective sessions first (live sessions plus
    /// assignments since the last heartbeat — the freshest load signal),
    /// then most free device memory, then least served time. Keeps every
    /// shard warm and is the right default for throughput scaling.
    #[default]
    Spread,
    /// Bin-pack by device memory: fullest shard that is still alive first
    /// (least free memory), tie-break on least served time. Concentrates
    /// load so whole shards stay idle — the right policy when idle shards
    /// can be reclaimed.
    Pack,
}

impl Placement {
    /// Rank `shards` into candidate order, best first. The full ranked
    /// list (not just the winner) is the failover order: if candidate 0's
    /// listener is down, try candidate 1, and so on.
    pub fn rank(self, shards: &[ShardEntry]) -> Vec<ShardEntry> {
        let mut ranked = shards.to_vec();
        // A saturated shard (QoS pressure at or past 1000 permille: session
        // watermark hit, or it shed calls since its last heartbeat) is only
        // a candidate of last resort under either policy — new sessions
        // placed there would be admission-refused with `CRICKET_BUSY`.
        let saturated = |e: &ShardEntry| u32::from(e.load.qos_pressure >= 1000);
        match self {
            Placement::Spread => ranked.sort_by(|a, b| {
                saturated(a)
                    .cmp(&saturated(b))
                    .then(a.effective_sessions().cmp(&b.effective_sessions()))
                    .then(b.load.free_mem.cmp(&a.load.free_mem))
                    .then(a.load.served_ns.cmp(&b.load.served_ns))
                    .then(a.port.cmp(&b.port))
            }),
            Placement::Pack => ranked.sort_by(|a, b| {
                saturated(a)
                    .cmp(&saturated(b))
                    .then(a.load.free_mem.cmp(&b.load.free_mem))
                    .then(a.load.served_ns.cmp(&b.load.served_ns))
                    .then(a.port.cmp(&b.port))
            }),
        }
        ranked
    }

    /// The single best shard, if any.
    pub fn pick(self, shards: &[ShardEntry]) -> Option<ShardEntry> {
        self.rank(shards).into_iter().next()
    }
}

/// Client-side view of a shard directory: where it is and which program's
/// shards to resolve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardDirectory {
    /// TCP address of the [`Portmap`] directory service.
    pub addr: SocketAddr,
    /// RPC program whose shards we resolve.
    pub prog: u32,
    /// RPC program version.
    pub vers: u32,
}

impl ShardDirectory {
    /// A directory view for the Cricket program.
    pub fn cricket(addr: SocketAddr) -> Self {
        Self {
            addr,
            prog: cricket_proto::CRICKET_CUDA,
            vers: cricket_proto::CRICKET_V1,
        }
    }

    fn client(&self) -> RpcResult<PortmapClient> {
        let t = TcpTransport::connect(self.addr)?;
        Ok(PortmapClient::new(Box::new(t)))
    }

    /// Dump the program's shards and rank them under `placement` (best
    /// first). Empty if no shard is registered.
    pub fn candidates(&self, placement: Placement) -> RpcResult<Vec<ShardEntry>> {
        let mut client = self.client()?;
        let shards = client.shard_dump(self.prog, self.vers)?;
        Ok(placement.rank(&shards))
    }

    /// Record at the directory that a new session was just placed on
    /// `port`, so concurrent connects spread out even before the shard's
    /// next heartbeat. Returns false if the shard is no longer registered.
    pub fn assign(&self, port: u32) -> RpcResult<bool> {
        self.client()?.shard_assign(self.prog, self.vers, port)
    }

    /// The socket address of a shard entry: the directory's IP with the
    /// shard's registered port (shards and directory share a host in this
    /// simulated fleet, as unikernel shards share their host's NIC).
    pub fn shard_addr(&self, entry: &ShardEntry) -> SocketAddr {
        SocketAddr::new(self.addr.ip(), entry.port as u16)
    }

    /// Pin a client token's session home to the shard on `port` (0 clears).
    /// Written by live migration at cutover so the evicted client's
    /// reconnect resolves straight to the session's new shard.
    pub fn set_home(&self, token: u64, port: u32) -> RpcResult<bool> {
        self.client()?
            .shard_home_set(self.prog, self.vers, token, port)
    }

    /// The pinned home port for a client token (0 = none, or home shard
    /// deregistered — fall back to [`candidates`](Self::candidates)).
    pub fn home(&self, token: u64) -> RpcResult<u32> {
        self.client()?.shard_home_get(self.prog, self.vers, token)
    }
}

/// Builder for a local fleet: one directory plus `shards` Cricket servers,
/// each registered and heartbeating.
pub struct FleetBuilder {
    shards: usize,
    config: ServerConfig,
    mode: ServeMode,
    policy: Option<SchedulerPolicy>,
    heartbeat: Duration,
}

impl FleetBuilder {
    /// A fleet of `shards` servers (each with its own vgpu device set,
    /// scheduler, and clock), served pipelined, heartbeating every 250 ms.
    pub fn new(shards: usize) -> Self {
        Self {
            shards: shards.max(1),
            config: ServerConfig::default(),
            mode: ServeMode::Pipelined,
            policy: None,
            heartbeat: Duration::from_millis(250),
        }
    }

    /// Device configuration applied to every shard.
    pub fn config(mut self, config: ServerConfig) -> Self {
        self.config = config;
        self
    }

    /// Serve mode applied to every shard.
    pub fn mode(mut self, mode: ServeMode) -> Self {
        self.mode = mode;
        self
    }

    /// Scheduler policy applied to every shard.
    pub fn scheduler(mut self, policy: SchedulerPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Heartbeat interval for shard load reports.
    pub fn heartbeat(mut self, interval: Duration) -> Self {
        self.heartbeat = interval;
        self
    }

    /// Start the directory and all shards on loopback.
    pub fn launch(self) -> RpcResult<Fleet> {
        let portmap = Arc::new(Portmap::new());
        let dir_handle = portmap.serve("127.0.0.1:0")?;
        let dir_addr = dir_handle.addr();
        let mut shards = Vec::with_capacity(self.shards);
        for _ in 0..self.shards {
            let mut b = ServerBuilder::new("127.0.0.1:0")
                .config(self.config.clone())
                .mode(self.mode)
                .directory(
                    dir_addr,
                    cricket_proto::CRICKET_CUDA,
                    cricket_proto::CRICKET_V1,
                )
                .heartbeat(self.heartbeat);
            if let Some(policy) = self.policy {
                b = b.scheduler(policy);
            }
            shards.push(Some(b.serve()?));
        }
        Ok(Fleet {
            dir_handle,
            portmap,
            dir_addr,
            shards,
        })
    }
}

/// A running fleet: the directory service plus its shard servers.
pub struct Fleet {
    dir_handle: oncrpc::ServerHandle,
    portmap: Arc<Portmap>,
    dir_addr: SocketAddr,
    shards: Vec<Option<ServeHandle>>,
}

impl Fleet {
    /// The directory service's TCP address.
    pub fn dir_addr(&self) -> SocketAddr {
        self.dir_addr
    }

    /// A client-side directory view for this fleet's Cricket shards.
    pub fn directory(&self) -> ShardDirectory {
        ShardDirectory::cricket(self.dir_addr)
    }

    /// The directory's in-process state (test hook: inspect registrations
    /// without a TCP round trip).
    pub fn portmap(&self) -> &Arc<Portmap> {
        &self.portmap
    }

    /// Live shard handles (killed/stopped shards are absent).
    pub fn shard(&self, i: usize) -> Option<&ServeHandle> {
        self.shards.get(i).and_then(|s| s.as_ref())
    }

    /// Number of shard slots (live or not).
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True if no shard slot exists.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Addresses of live shards, slot order.
    pub fn shard_addrs(&self) -> Vec<SocketAddr> {
        self.shards.iter().flatten().map(|s| s.addr()).collect()
    }

    /// Gracefully stop shard `i`: deregisters from the directory first, so
    /// new sessions immediately stop landing on it. Returns false if the
    /// slot is already empty.
    pub fn stop_shard(&mut self, i: usize) -> bool {
        match self.shards.get_mut(i).and_then(|s| s.take()) {
            Some(s) => {
                s.shutdown();
                true
            }
            None => false,
        }
    }

    /// Crash shard `i`: the listener dies but the directory keeps the stale
    /// entry (no deregistration, no final heartbeat) — exactly what a
    /// powered-off shard looks like. Clients must discover the corpse by
    /// failing to connect and fall over to the next-ranked candidate.
    pub fn kill_shard(&mut self, i: usize) -> bool {
        match self.shards.get_mut(i).and_then(|s| s.take()) {
            Some(s) => {
                s.kill();
                true
            }
            None => false,
        }
    }

    /// Stop every shard (gracefully) and the directory.
    pub fn shutdown(mut self) {
        for slot in self.shards.iter_mut() {
            if let Some(s) = slot.take() {
                s.shutdown();
            }
        }
        self.dir_handle.shutdown();
    }

    /// The slot index of the live shard registered on `port` — the bridge
    /// from [`rebalance_plan`]'s port-speak to migration's slot-speak.
    pub fn shard_by_port(&self, port: u32) -> Option<usize> {
        self.shards
            .iter()
            .position(|s| s.as_ref().map(|h| u32::from(h.addr().port())) == Some(port))
    }

    /// Start a live migration of `token`'s session from shard `from` to
    /// shard `to`: connect to the destination, export the source's base
    /// snapshot, and stage it. The source keeps serving the client; call
    /// [`SessionMigration::round`] to stream dirty deltas and
    /// [`SessionMigration::cutover`] to finish (or use
    /// [`migrate_session`](Self::migrate_session) for the whole dance).
    pub fn begin_migration(
        &self,
        token: u64,
        from: usize,
        to: usize,
    ) -> Result<SessionMigration, MigrateError> {
        if from == to {
            return Err(MigrateError::Plan(
                "source and destination are the same shard".into(),
            ));
        }
        let src = self
            .shard(from)
            .ok_or_else(|| MigrateError::SourceLost(format!("shard {from} is not live")))?;
        let dst = self
            .shard(to)
            .ok_or_else(|| MigrateError::DestLost(format!("shard {to} is not live")))?;
        if src.server().session_of_token(token).is_none() {
            return Err(MigrateError::Plan(format!(
                "no live session for token {token:#x} on shard {from}"
            )));
        }
        // The driver's own connection carries no client-token credential,
        // so the destination's eviction/adoption gate never applies to it.
        let t =
            TcpTransport::connect(dst.addr()).map_err(|e| MigrateError::DestLost(e.to_string()))?;
        let client = CricketV1Client::new(Box::new(t));
        let mut known = BTreeSet::new();
        let blob = src
            .server()
            .mig_export(token, &mut known, MigKind::Base)
            .map_err(|e| MigrateError::Plan(e.to_string()))?;
        let mut mig = SessionMigration {
            token,
            from,
            to,
            client,
            known,
            evicted: false,
            home_set: false,
            report: MigrationReport {
                base_bytes: blob.len() as u64,
                ..MigrationReport::default()
            },
        };
        match mig.client.mig_apply_base(&blob) {
            Ok(0) => Ok(mig),
            Ok(code) => Err(MigrateError::Apply(code)),
            Err(e) => Err(MigrateError::DestLost(e.to_string())),
        }
    }

    /// Migrate `token`'s session from shard `from` to shard `to` with
    /// `copy_rounds` incremental pre-copy rounds before the cutover,
    /// aborting cleanly (home cleared, token readmitted at the source,
    /// destination's staged state discarded) on any failure.
    pub fn migrate_session(
        &self,
        token: u64,
        from: usize,
        to: usize,
        copy_rounds: u32,
    ) -> Result<MigrationReport, MigrateError> {
        let mut mig = self.begin_migration(token, from, to)?;
        for _ in 0..copy_rounds {
            if let Err(e) = mig.round(self) {
                mig.abort(self);
                return Err(e);
            }
        }
        match mig.cutover(self) {
            Ok(()) => Ok(mig.finish()),
            Err(e) => {
                mig.abort(self);
                Err(e)
            }
        }
    }

    /// Execute one [`rebalance_plan`] move as live migrations: the planner
    /// speaks ports, migration speaks shard slots and client tokens, so
    /// the caller names which tokens (up to `m.sessions` of them) should
    /// move. Stops at the first failed migration.
    pub fn execute_move(
        &self,
        m: &Move,
        tokens: &[u64],
        copy_rounds: u32,
    ) -> Result<Vec<MigrationReport>, MigrateError> {
        let from = self.shard_by_port(m.from_port).ok_or_else(|| {
            MigrateError::SourceLost(format!("no live shard on port {}", m.from_port))
        })?;
        let to = self.shard_by_port(m.to_port).ok_or_else(|| {
            MigrateError::DestLost(format!("no live shard on port {}", m.to_port))
        })?;
        tokens
            .iter()
            .take(m.sessions as usize)
            .map(|&token| self.migrate_session(token, from, to, copy_rounds))
            .collect()
    }
}

/// What one live migration moved and what it cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationReport {
    /// Incremental pre-copy rounds streamed while the source kept serving.
    pub rounds: u32,
    /// Wire bytes of the base snapshot blob.
    pub base_bytes: u64,
    /// Wire bytes of all incremental delta blobs.
    pub delta_bytes: u64,
    /// Wire bytes of the final post-barrier blob — the only bytes moved
    /// while the client was paused.
    pub final_bytes: u64,
    /// The session's full footprint (device blocks + module images) at
    /// cutover: what a naive non-incremental migration would have moved
    /// under pause.
    pub naive_bytes: u64,
    /// Wall-clock duration of the client-visible pause: eviction at the
    /// source until the destination acknowledged the final blob.
    pub pause_ns: u64,
}

impl MigrationReport {
    /// Total wire bytes streamed across all migration blobs.
    pub fn streamed_bytes(&self) -> u64 {
        self.base_bytes + self.delta_bytes + self.final_bytes
    }

    /// Bytes moved after the base snapshot — the incremental resync a
    /// naive migration would instead pay as a second full copy.
    pub fn resync_bytes(&self) -> u64 {
        self.delta_bytes + self.final_bytes
    }
}

/// Why a live migration failed. Every failure path leaves the source
/// session intact and serving (unless the source itself is what died).
#[derive(Debug)]
pub enum MigrateError {
    /// The migration request itself was invalid (unknown token, same
    /// source and destination, export failure).
    Plan(String),
    /// The source shard died or was stopped mid-migration.
    SourceLost(String),
    /// The destination shard died, was stopped, or became unreachable.
    DestLost(String),
    /// The destination rejected a blob with this CUDA error code.
    Apply(i32),
}

impl std::fmt::Display for MigrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrateError::Plan(s) => write!(f, "migration plan invalid: {s}"),
            MigrateError::SourceLost(s) => write!(f, "migration source lost: {s}"),
            MigrateError::DestLost(s) => write!(f, "migration destination lost: {s}"),
            MigrateError::Apply(code) => write!(f, "destination rejected blob: error {code}"),
        }
    }
}

impl std::error::Error for MigrateError {}

/// An in-flight live migration: source still serving, destination holding
/// a staged adoption. Drive it with [`round`](Self::round) /
/// [`cutover`](Self::cutover), or drop it via [`abort`](Self::abort).
pub struct SessionMigration {
    token: u64,
    from: usize,
    to: usize,
    client: CricketV1Client,
    known: BTreeSet<u64>,
    evicted: bool,
    home_set: bool,
    report: MigrationReport,
}

impl SessionMigration {
    /// Progress so far.
    pub fn report(&self) -> &MigrationReport {
        &self.report
    }

    /// Stream one incremental delta (everything the session dirtied,
    /// allocated, or freed since the previous blob) while the source keeps
    /// serving the client. Returns the delta's wire size.
    pub fn round(&mut self, fleet: &Fleet) -> Result<u64, MigrateError> {
        let src = fleet.shard(self.from).ok_or_else(|| {
            MigrateError::SourceLost(format!("shard {} died mid-migration", self.from))
        })?;
        if fleet.shard(self.to).is_none() {
            return Err(MigrateError::DestLost(format!(
                "shard {} died mid-migration",
                self.to
            )));
        }
        let blob = src
            .server()
            .mig_export(self.token, &mut self.known, MigKind::Delta)
            .map_err(|e| MigrateError::SourceLost(e.to_string()))?;
        match self.client.mig_apply_delta(&blob) {
            Ok(IntResult::Data(_)) => {}
            Ok(IntResult::Default(code)) => return Err(MigrateError::Apply(code)),
            Err(e) => return Err(MigrateError::DestLost(e.to_string())),
        }
        self.report.rounds += 1;
        self.report.delta_bytes += blob.len() as u64;
        Ok(blob.len() as u64)
    }

    /// Cut the session over to the destination:
    ///
    /// 1. pin the session's directory home to the destination (so the
    ///    evicted client's reconnect resolves straight there),
    /// 2. evict the token at the source — its next call is refused, the
    ///    connection closes, the client enters its reconnect loop,
    /// 3. export the final post-barrier delta (streams fenced, replay
    ///    entries attached) and apply it at the destination, which flips
    ///    the staged adoption to ready,
    /// 4. finalize the source: replay entries dropped, session released.
    ///
    /// The pause clock runs from eviction to the destination's ack.
    pub fn cutover(&mut self, fleet: &Fleet) -> Result<(), MigrateError> {
        let src = fleet.shard(self.from).ok_or_else(|| {
            MigrateError::SourceLost(format!("shard {} died before cutover", self.from))
        })?;
        let dst = fleet.shard(self.to).ok_or_else(|| {
            MigrateError::DestLost(format!("shard {} died before cutover", self.to))
        })?;
        self.report.naive_bytes = src.server().session_footprint(self.token);
        let dir = fleet.directory();
        dir.set_home(self.token, u32::from(dst.addr().port()))
            .map_err(|e| MigrateError::DestLost(format!("directory home update failed: {e}")))?;
        self.home_set = true;
        src.server().evict_token(self.token);
        self.evicted = true;
        let pause = Instant::now();
        let blob = src
            .server()
            .mig_export(self.token, &mut self.known, MigKind::Final)
            .map_err(|e| MigrateError::SourceLost(e.to_string()))?;
        match self.client.mig_apply_delta(&blob) {
            Ok(IntResult::Data(_)) => {}
            Ok(IntResult::Default(code)) => return Err(MigrateError::Apply(code)),
            Err(e) => return Err(MigrateError::DestLost(e.to_string())),
        }
        self.report.pause_ns = pause.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        self.report.final_bytes = blob.len() as u64;
        src.server().mig_finalize_source(self.token);
        Ok(())
    }

    /// Abandon the migration: clear the pinned home, readmit the token at
    /// the source (if it still exists), and tell the destination to
    /// discard its staged state. Every step is best-effort — the parts
    /// that still exist are cleaned.
    pub fn abort(mut self, fleet: &Fleet) {
        if self.home_set {
            let _ = fleet.directory().set_home(self.token, 0);
        }
        if self.evicted {
            if let Some(src) = fleet.shard(self.from) {
                src.server().readmit_token(self.token);
            }
        }
        let _ = self.client.mig_abort(&self.token);
    }

    /// Consume a completed migration, yielding its report.
    pub fn finish(self) -> MigrationReport {
        self.report
    }
}

/// One planned session migration: move `sessions` sessions from the shard
/// registered on `from_port` to the one on `to_port`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Move {
    /// Source shard's registered port.
    pub from_port: u32,
    /// Destination shard's registered port.
    pub to_port: u32,
    /// How many sessions to move.
    pub sessions: u32,
}

/// A rebalancing plan: the session moves that would bring every shard's
/// session count within the tolerance band around the mean.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RebalancePlan {
    /// Moves in application order. Empty = already balanced.
    pub moves: Vec<Move>,
}

impl RebalancePlan {
    /// True if no move is needed.
    pub fn is_balanced(&self) -> bool {
        self.moves.is_empty()
    }
}

/// Compute the moves that even out `sessions` across shards, leaving every
/// shard within `±tolerance` (fraction of the mean, e.g. `0.25`) of the
/// mean session count.
///
/// This is the fleet's hook for the future live-migration item: the plan
/// is pure and deterministic (greedy: repeatedly move one session from the
/// most- to the least-loaded shard until both are inside the band), and a
/// migration engine can execute its moves with streaming checkpoints.
pub fn rebalance_plan(shards: &[ShardEntry], tolerance: f64) -> RebalancePlan {
    let mut plan = RebalancePlan::default();
    if shards.len() < 2 {
        return plan;
    }
    let mut counts: Vec<(u32, i64)> = shards
        .iter()
        .map(|s| (s.port, i64::from(s.effective_sessions())))
        .collect();
    counts.sort_by_key(|&(port, _)| port);
    let total: i64 = counts.iter().map(|&(_, n)| n).sum();
    let mean = total as f64 / counts.len() as f64;
    let slack = (mean * tolerance.max(0.0)).floor() as i64;
    let (lo, hi) = (mean.floor() as i64 - slack, mean.ceil() as i64 + slack);
    loop {
        let (mut max_i, mut min_i) = (0, 0);
        for (i, &(_, n)) in counts.iter().enumerate() {
            if n > counts[max_i].1 {
                max_i = i;
            }
            if n < counts[min_i].1 {
                min_i = i;
            }
        }
        if counts[max_i].1 <= hi || counts[min_i].1 >= lo || counts[max_i].1 - counts[min_i].1 <= 1
        {
            break;
        }
        counts[max_i].1 -= 1;
        counts[min_i].1 += 1;
        let (from_port, to_port) = (counts[max_i].0, counts[min_i].0);
        match plan
            .moves
            .iter_mut()
            .find(|m| m.from_port == from_port && m.to_port == to_port)
        {
            Some(m) => m.sessions += 1,
            None => plan.moves.push(Move {
                from_port,
                to_port,
                sessions: 1,
            }),
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(port: u32, sessions: u32, free_mem: u64, served_ns: u64) -> ShardEntry {
        ShardEntry {
            port,
            load: LoadReport {
                free_mem,
                total_mem: free_mem.max(1),
                served_ns,
                sessions,
                qos_pressure: 0,
            },
            assigned: 0,
        }
    }

    #[test]
    fn spread_ranks_by_sessions_then_memory_then_time() {
        let shards = [
            entry(5001, 3, 100, 10),
            entry(5002, 1, 50, 10),
            entry(5003, 1, 80, 10),
            entry(5004, 1, 80, 5),
        ];
        let ranked = Placement::Spread.rank(&shards);
        let ports: Vec<u32> = ranked.iter().map(|s| s.port).collect();
        // Fewest sessions first; among the 1-session shards most free
        // memory wins; among equal memory least served time wins.
        assert_eq!(ports, vec![5004, 5003, 5002, 5001]);
    }

    #[test]
    fn saturated_shards_rank_last_under_both_policies() {
        // The otherwise-best shard reports QoS saturation (admission is
        // shedding there); placement must prefer any unsaturated shard.
        let mut best = entry(5001, 0, 500, 0);
        best.load.qos_pressure = 1000;
        let loaded = entry(5002, 7, 10, 99);
        assert_eq!(Placement::Spread.pick(&[best, loaded]).unwrap().port, 5002);
        assert_eq!(Placement::Pack.pick(&[best, loaded]).unwrap().port, 5002);
        // Below saturation, pressure is informational only: ordering is
        // unchanged from the classic keys.
        let mut warm = entry(5003, 0, 500, 0);
        warm.load.qos_pressure = 999;
        assert_eq!(Placement::Spread.pick(&[warm, loaded]).unwrap().port, 5003);
    }

    #[test]
    fn spread_counts_unheartbeaten_assignments() {
        let mut a = entry(5001, 0, 100, 0);
        a.assigned = 5;
        let b = entry(5002, 3, 100, 0);
        assert_eq!(Placement::Spread.pick(&[a, b]).unwrap().port, 5002);
    }

    #[test]
    fn pack_fills_fullest_first() {
        let shards = [
            entry(5001, 0, 10, 99),
            entry(5002, 0, 500, 0),
            entry(5003, 0, 10, 1),
        ];
        let ranked = Placement::Pack.rank(&shards);
        let ports: Vec<u32> = ranked.iter().map(|s| s.port).collect();
        assert_eq!(ports, vec![5003, 5001, 5002]);
    }

    #[test]
    fn rebalance_evens_out_skew() {
        let shards = [entry(1, 10, 0, 0), entry(2, 0, 0, 0), entry(3, 2, 0, 0)];
        let plan = rebalance_plan(&shards, 0.0);
        assert!(!plan.is_balanced());
        // Apply the plan and verify every shard lands on the mean (4).
        let mut counts = std::collections::HashMap::from([(1u32, 10i64), (2, 0), (3, 2)]);
        for m in &plan.moves {
            *counts.get_mut(&m.from_port).unwrap() -= i64::from(m.sessions);
            *counts.get_mut(&m.to_port).unwrap() += i64::from(m.sessions);
        }
        assert_eq!(counts[&1], 4);
        assert_eq!(counts[&2], 4);
        assert_eq!(counts[&3], 4);
    }

    #[test]
    fn rebalance_tolerates_band() {
        // Mean 4, tolerance 25% → slack 1 → band [3, 6]: already balanced.
        let shards = [entry(1, 5, 0, 0), entry(2, 3, 0, 0)];
        assert!(rebalance_plan(&shards, 0.25).is_balanced());
        // Zero tolerance wants them within 1 of each other — 5 vs 3 moves.
        assert!(!rebalance_plan(&shards, 0.0).is_balanced());
    }

    #[test]
    fn rebalance_trivial_inputs() {
        assert!(rebalance_plan(&[], 0.25).is_balanced());
        assert!(rebalance_plan(&[entry(1, 9, 0, 0)], 0.25).is_balanced());
    }

    #[test]
    fn fleet_launch_register_stop_kill() {
        let mut fleet = FleetBuilder::new(3)
            .heartbeat(Duration::from_secs(3600))
            .launch()
            .unwrap();
        let dir = fleet.directory();
        let cands = dir.candidates(Placement::Spread).unwrap();
        assert_eq!(cands.len(), 3, "all shards registered on launch");
        let ports: Vec<u16> = fleet.shard_addrs().iter().map(|a| a.port()).collect();
        assert!(cands.iter().all(|c| ports.contains(&(c.port as u16))));

        // Graceful stop deregisters.
        let stopped_port = fleet.shard(0).unwrap().addr().port();
        assert!(fleet.stop_shard(0));
        assert!(!fleet.stop_shard(0), "double stop is a no-op");
        let cands = dir.candidates(Placement::Spread).unwrap();
        assert_eq!(cands.len(), 2);
        assert!(cands.iter().all(|c| c.port != u32::from(stopped_port)));

        // Crash-kill leaves the stale entry for clients to fail over past.
        let killed_port = fleet.shard(1).unwrap().addr().port();
        assert!(fleet.kill_shard(1));
        let cands = dir.candidates(Placement::Spread).unwrap();
        assert_eq!(cands.len(), 2, "stale entry survives a crash");
        assert!(cands.iter().any(|c| c.port == u32::from(killed_port)));
        assert!(TcpTransport::connect(
            dir.shard_addr(
                cands
                    .iter()
                    .find(|c| c.port == u32::from(killed_port))
                    .unwrap()
            )
        )
        .is_err());

        // Assignment bumps show up in the next dump.
        let live = cands
            .iter()
            .find(|c| c.port != u32::from(killed_port))
            .unwrap();
        assert!(dir.assign(live.port).unwrap());
        let cands = dir.candidates(Placement::Spread).unwrap();
        let seen = cands.iter().find(|c| c.port == live.port).unwrap();
        assert_eq!(seen.assigned, 1);

        fleet.shutdown();
    }
}
