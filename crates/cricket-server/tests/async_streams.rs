//! Acceptance tests for the asynchronous stream execution engine:
//!
//! * async calls enqueue and return at submission; only sync points wait;
//! * two sessions on separate (per-session default) streams finish in
//!   measurably less total virtual time than the serial sum;
//! * same-stream commands retire strictly in issue order while cross-stream
//!   work overlaps;
//! * the scheduler arbitrates time: per-session served-time ledgers reflect
//!   the offered load, and `release_session` forgets every trace;
//! * the whole engine is deterministic: identical workloads produce
//!   identical clocks and identical retirement logs.

use cricket_proto::CricketV1Service;
use cricket_server::service::Sessioned;
use cricket_server::{CricketServer, SchedulerPolicy, ServerConfig};
use simnet::SimClock;
use std::sync::Arc;
use vgpu::module::CubinBuilder;

/// 4 Mi f32 elements: ~30 µs of device time per vectorAdd launch, well above
/// the ~10 µs host dispatch cost, so stream queues genuinely back up.
const N: usize = 1 << 22;
const LAUNCHES: usize = 32;

struct Harness {
    clock: Arc<SimClock>,
    server: Arc<CricketServer>,
}

impl Harness {
    fn new() -> Self {
        let clock = SimClock::new();
        let server = CricketServer::new(ServerConfig::default(), Arc::clone(&clock));
        Self { clock, server }
    }

    /// A tenant with vectorAdd loaded and inputs staged; returns the session
    /// view plus the launch parameter blob.
    fn tenant(&self, session: u32) -> (Sessioned, u64, Vec<u8>) {
        let api = Sessioned::new(Arc::clone(&self.server), session);
        let image = CubinBuilder::new()
            .kernel("vectorAdd", &[8, 8, 8, 4])
            .code(b"vectorAdd SASS")
            .build(false);
        let module = api
            .cu_module_load_data(&image)
            .unwrap()
            .into_result()
            .unwrap();
        let func = api
            .cu_module_get_function(module, "vectorAdd")
            .unwrap()
            .into_result()
            .unwrap();
        let bytes = (N * 4) as u64;
        let a = api.cuda_malloc(bytes).unwrap().into_result().unwrap();
        let b = api.cuda_malloc(bytes).unwrap().into_result().unwrap();
        let c = api.cuda_malloc(bytes).unwrap().into_result().unwrap();
        let fill = |v: f32| -> Vec<u8> {
            v.to_le_bytes()
                .iter()
                .copied()
                .cycle()
                .take(N * 4)
                .collect()
        };
        api.cuda_memcpy_htod(a, &fill(1.0)).unwrap();
        api.cuda_memcpy_htod(b, &fill(2.0)).unwrap();
        let params = vgpu::kernels::ParamBuilder::new()
            .ptr(c)
            .ptr(a)
            .ptr(b)
            .u32(N as u32)
            .build();
        (api, func, params)
    }
}

fn launch(api: &Sessioned, func: u64, params: &[u8]) {
    let grid = ((N as u32).div_ceil(256), 1, 1).into();
    let block = (256, 1, 1).into();
    assert_eq!(
        api.cuda_launch_kernel(func, grid, block, 0, 0, params)
            .unwrap(),
        0
    );
}

/// Run the two-tenant workload; `interleave` issues launches alternately,
/// otherwise each tenant runs to completion before the next starts.
/// Returns (elapsed_ns, final_clock_ns).
fn run_workload(interleave: bool) -> (u64, u64) {
    let h = Harness::new();
    let (ta, fa, pa) = h.tenant(1);
    let (tb, fb, pb) = h.tenant(2);
    let t0 = h.clock.now_ns();
    if interleave {
        for _ in 0..LAUNCHES {
            launch(&ta, fa, &pa);
            launch(&tb, fb, &pb);
        }
        assert_eq!(ta.cuda_device_synchronize().unwrap(), 0);
        assert_eq!(tb.cuda_device_synchronize().unwrap(), 0);
    } else {
        for (t, f, p) in [(&ta, fa, &pa), (&tb, fb, &pb)] {
            for _ in 0..LAUNCHES {
                launch(t, f, p);
            }
            assert_eq!(t.cuda_device_synchronize().unwrap(), 0);
        }
    }
    (h.clock.now_ns() - t0, h.clock.now_ns())
}

#[test]
fn two_sessions_overlap_beats_serial_sum() {
    let (serial, _) = run_workload(false);
    let (pipelined, _) = run_workload(true);
    assert!(
        pipelined * 4 < serial * 3,
        "pipelined {pipelined} ns must undercut serial {serial} ns by ≥ 25%"
    );
}

#[test]
fn async_launches_return_before_completion() {
    let h = Harness::new();
    let (api, func, params) = h.tenant(1);
    let t0 = h.clock.now_ns();
    for _ in 0..LAUNCHES {
        launch(&api, func, &params);
    }
    let submitted = h.clock.now_ns() - t0;
    assert_eq!(api.cuda_device_synchronize().unwrap(), 0);
    let drained = h.clock.now_ns() - t0 - submitted;
    // Submission is cheap; the stream drain carries the device time.
    assert!(
        drained > submitted,
        "sync wait ({drained} ns) should dominate submission ({submitted} ns)"
    );
}

#[test]
fn same_stream_commands_retire_in_issue_order_across_sessions() {
    let h = Harness::new();
    let (ta, fa, pa) = h.tenant(1);
    let (tb, fb, pb) = h.tenant(2);
    for _ in 0..6 {
        launch(&ta, fa, &pa);
        launch(&tb, fb, &pb);
    }
    assert_eq!(ta.cuda_device_synchronize().unwrap(), 0);
    assert_eq!(tb.cuda_device_synchronize().unwrap(), 0);
    let retired = h.server.drain_retired(0);
    assert!(!retired.is_empty());
    // Per stream: issue sequence strictly increasing, start/completion
    // monotone, no command overlapping its predecessor on the same stream.
    let mut streams: std::collections::HashMap<u64, Vec<&vgpu::Retired>> =
        std::collections::HashMap::new();
    for r in &retired {
        streams.entry(r.stream).or_default().push(r);
    }
    let kernel_streams = streams
        .values()
        .filter(|rs| {
            rs.iter()
                .any(|r| matches!(r.kind, vgpu::CommandKind::Kernel { .. }))
        })
        .count();
    assert_eq!(kernel_streams, 2, "one default stream per session");
    for rs in streams.values() {
        for w in rs.windows(2) {
            assert!(w[0].seq < w[1].seq, "retire order must match issue order");
            assert!(
                w[0].completes_at_ns <= w[1].starts_at_ns,
                "no same-stream overlap"
            );
        }
    }
    // Cross-stream: at least one pair of kernels from different streams
    // overlapped in device time.
    let kernels: Vec<_> = retired
        .iter()
        .filter(|r| matches!(r.kind, vgpu::CommandKind::Kernel { .. }))
        .collect();
    let overlapped = kernels.iter().any(|x| {
        kernels.iter().any(|y| {
            x.stream != y.stream
                && x.starts_at_ns < y.completes_at_ns
                && y.starts_at_ns < x.completes_at_ns
        })
    });
    assert!(
        overlapped,
        "kernels on different sessions' streams must overlap"
    );
}

#[test]
fn served_time_ledger_tracks_offered_load_per_policy() {
    for policy in [
        SchedulerPolicy::Fifo,
        SchedulerPolicy::RoundRobin,
        SchedulerPolicy::Priority,
    ] {
        let h = Harness::new();
        h.server.scheduler.set_policy(policy);
        if policy == SchedulerPolicy::Priority {
            h.server.scheduler.set_priority(1, 1);
            h.server.scheduler.set_priority(2, 50);
            h.server.scheduler.set_priority(3, 100);
        }
        // Sessions 1/2/3 offer load in a 1:2:3 ratio. Setup (module load,
        // 16 MiB staging copies) charges every session equally, so ratio
        // math works on the post-setup delta.
        let tenants: Vec<_> = (1..=3u32).map(|s| h.tenant(s)).collect();
        let baseline_ns = h.server.scheduler.served_ns();
        let baseline_ops = h.server.scheduler.served_ops();
        for round in 0..4 {
            for (i, (api, func, params)) in tenants.iter().enumerate() {
                let _ = round;
                for _ in 0..(i + 1) * 4 {
                    launch(api, *func, params);
                }
            }
        }
        for (api, _, _) in &tenants {
            assert_eq!(api.cuda_device_synchronize().unwrap(), 0);
        }
        let ns = h.server.scheduler.served_ns();
        let delta = |s: u32| ns[&s] - baseline_ns[&s];
        let (a, b, c) = (delta(1), delta(2), delta(3));
        assert!(a > 0, "{policy:?}: every session must be charged");
        // Device-time charges are workload-proportional under every policy —
        // the arbiter orders issuance, it does not starve anyone.
        let ratio_ba = b as f64 / a as f64;
        let ratio_ca = c as f64 / a as f64;
        assert!(
            (ratio_ba - 2.0).abs() < 0.2 && (ratio_ca - 3.0).abs() < 0.3,
            "{policy:?}: served-ns ratios {ratio_ba:.2}, {ratio_ca:.2} should be ≈ 2 and 3"
        );
        // Ops ledger: same story in call counts.
        let ops = h.server.scheduler.served_ops();
        let dops = |s: u32| ops[&s] - baseline_ops[&s];
        assert!(
            dops(2) > dops(1) && dops(3) > dops(2),
            "{policy:?}: {ops:?} (baseline {baseline_ops:?})"
        );
    }
}

#[test]
fn concurrent_sessions_all_get_served_and_stay_isolated() {
    let h = Harness::new();
    h.server.scheduler.set_policy(SchedulerPolicy::RoundRobin);
    let mut joins = Vec::new();
    for s in 1..=4u32 {
        let server = Arc::clone(&h.server);
        joins.push(std::thread::spawn(move || {
            let api = Sessioned::new(server, s);
            let ptr = api.cuda_malloc(4096).unwrap().into_result().unwrap();
            let fill = vec![s as u8; 4096];
            for _ in 0..25 {
                api.cuda_memcpy_htod(ptr, &fill).unwrap();
                let back = api
                    .cuda_memcpy_dtoh(ptr, 4096)
                    .unwrap()
                    .into_result()
                    .unwrap();
                assert!(back.iter().all(|&v| v == s as u8), "tenant isolation");
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let ns = h.server.scheduler.served_ns();
    let ops = h.server.scheduler.served_ops();
    for s in 1..=4u32 {
        assert!(ns[&s] > 0, "session {s} charged no device time");
        assert!(ops[&s] >= 50, "session {s} under-served: {:?}", ops);
    }
}

#[test]
fn release_session_forgets_scheduler_state() {
    let h = Harness::new();
    let (api, func, params) = h.tenant(7);
    launch(&api, func, &params);
    assert_eq!(api.cuda_device_synchronize().unwrap(), 0);
    assert!(h.server.scheduler.knows(7));
    assert!(h.server.scheduler.served_ns()[&7] > 0);

    let cleanup = h.server.release_session(7);
    assert!(cleanup.total() > 0);
    assert!(
        !h.server.scheduler.knows(7),
        "scheduler must not leak per-session state after release"
    );
    assert!(!h.server.scheduler.served_ns().contains_key(&7));
    assert!(!h.server.scheduler.served_ops().contains_key(&7));
}

#[test]
fn host_only_queries_bypass_the_arbiter() {
    let h = Harness::new();
    let api = Sessioned::new(Arc::clone(&h.server), 3);
    api.cuda_get_device_count().unwrap();
    api.cuda_get_device_properties(0).unwrap();
    api.cuda_get_device().unwrap();
    api.cuda_mem_get_info().unwrap();
    assert!(h.server.scheduler.served_ops().is_empty());
    assert!(h.server.scheduler.served_ns().is_empty());
}

#[test]
fn identical_workloads_produce_identical_clocks_and_logs() {
    let run = || {
        let h = Harness::new();
        let (ta, fa, pa) = h.tenant(1);
        let (tb, fb, pb) = h.tenant(2);
        for _ in 0..8 {
            launch(&ta, fa, &pa);
            launch(&tb, fb, &pb);
        }
        assert_eq!(ta.cuda_device_synchronize().unwrap(), 0);
        assert_eq!(tb.cuda_device_synchronize().unwrap(), 0);
        let log: Vec<String> = h
            .server
            .drain_retired(0)
            .into_iter()
            .map(|r| {
                format!(
                    "{}:{}:{:?}:{}..{}",
                    r.stream, r.seq, r.kind, r.starts_at_ns, r.completes_at_ns
                )
            })
            .collect();
        (h.clock.now_ns(), log)
    };
    let (clock1, log1) = run();
    let (clock2, log2) = run();
    assert_eq!(clock1, clock2, "virtual clocks must be identical");
    assert_eq!(log1, log2, "retirement logs must be identical");
}
