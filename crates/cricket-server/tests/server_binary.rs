//! Smoke test of the `cricket-server` binary: start the real process,
//! connect over TCP with the generated stub, issue CUDA calls, kill it.

use cricket_proto::CricketV1Client;
use oncrpc::TcpTransport;
use std::io::{BufRead, BufReader};
use std::process::{Command, Stdio};
use std::time::Duration;

#[test]
fn binary_serves_the_cricket_protocol() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_cricket-server"))
        .args(["--listen", "127.0.0.1:0", "--devices", "2"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn cricket-server");

    // The binary prints "cricket-server: simulated A100 at <addr> ...".
    let stdout = child.stdout.take().expect("stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("banner");
    let addr = line
        .split(" at ")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .expect("address in banner")
        .to_string();

    let result = (|| -> Result<(), Box<dyn std::error::Error>> {
        let t = TcpTransport::connect(&addr)?;
        t.set_read_timeout(Some(Duration::from_secs(10)))?;
        let mut client = CricketV1Client::new(Box::new(t));
        client.rpc_null()?;
        assert_eq!(client.cuda_get_device_count()?.into_result().unwrap(), 2);
        let ptr = client.cuda_malloc(&4096)?.into_result().unwrap();
        assert_eq!(client.cuda_memcpy_htod(&ptr, &[5u8; 64])?, 0);
        let back = client.cuda_memcpy_dtoh(&ptr, &64)?.into_result().unwrap();
        assert_eq!(back, vec![5u8; 64]);
        assert_eq!(client.cuda_free(&ptr)?, 0);
        Ok(())
    })();

    let _ = child.kill();
    let _ = child.wait();
    result.expect("RPC session against the binary");
}

#[test]
fn binary_rejects_unknown_flags() {
    let out = Command::new(env!("CARGO_BIN_EXE_cricket-server"))
        .arg("--bogus")
        .output()
        .expect("run");
    assert!(!out.status.success());
}

#[test]
fn binary_prints_help() {
    let out = Command::new(env!("CARGO_BIN_EXE_cricket-server"))
        .arg("--help")
        .output()
        .expect("run");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
