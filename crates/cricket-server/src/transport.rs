//! Simulated client↔server transport.
//!
//! [`SimTransport`] implements [`oncrpc::Transport`] for the figure
//! harnesses: the client's RPC bytes are (1) really carried through the
//! functional guest TCP/virtio data path — segmentation, checksum,
//! host-side TSO splitting, reassembly — and (2) timed with the
//! environment's cost model against the shared virtual clock. The Cricket
//! service runs in-process and charges its own execution time, so one call
//! through this transport advances the clock by exactly the modeled
//! client→wire→server→wire→client round trip.

use oncrpc::{RpcError, RpcServer, Transport};
use simnet::{NetPath, SimClock};
use std::io::{self, Read, Write};
use std::sync::Arc;
use unikernel::features::VirtioFeatures;
use unikernel::tcp::{handshake, Segment, TcpEndpoint};
use unikernel::virtio_net::{deliver_fixed, deliver_mrg, guest_tx, host_segment, GSO_MAX};
use unikernel::Guest;

/// Transport-level telemetry.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TransportStats {
    /// RPC round trips completed.
    pub round_trips: u64,
    /// Wire segments carried, both directions.
    pub wire_segments: u64,
    /// Request payload bytes.
    pub bytes_sent: u64,
    /// Reply payload bytes.
    pub bytes_received: u64,
}

/// The simulated path from a guest to an in-process Cricket server.
pub struct SimTransport {
    server: Arc<RpcServer>,
    guest: Guest,
    path: NetPath,
    clock: Arc<SimClock>,
    client_ep: TcpEndpoint,
    server_ep: TcpEndpoint,
    pending_out: Vec<u8>,
    incoming: Vec<u8>,
    incoming_off: usize,
    /// Pooled server-side record reassembly buffer.
    record_buf: Vec<u8>,
    /// Pooled server-side reply encoder.
    reply_enc: xdr::XdrEncoder,
    /// Pooled record-marked reply bytes.
    reply_wire: Vec<u8>,
    /// Telemetry.
    pub stats: TransportStats,
}

impl SimTransport {
    /// Connect a guest environment to an RPC server over the modeled path.
    /// `clock` must be the same clock the server's service charges.
    pub fn new(server: Arc<RpcServer>, guest: Guest, clock: Arc<SimClock>) -> Self {
        let path = NetPath::to_gpu_node(guest.costs.clone());
        // The guest TCP layer sees super-segment MSS when TSO is on (the
        // host splits); otherwise it segments at the link MTU itself.
        let client_mtu = if guest.costs.offloads.tso {
            GSO_MAX + 40
        } else {
            guest.costs.mtu
        };
        let mut client_ep = TcpEndpoint::new(
            client_mtu,
            !guest.costs.offloads.tx_csum,
            !guest.costs.offloads.rx_csum,
        );
        // The GPU node is native Linux: full offloads.
        let mut server_ep = TcpEndpoint::new(GSO_MAX + 40, false, false);
        handshake(&mut client_ep, &mut server_ep);
        Self {
            server,
            guest,
            path,
            clock,
            client_ep,
            server_ep,
            pending_out: Vec::new(),
            incoming: Vec::new(),
            incoming_off: 0,
            record_buf: Vec::with_capacity(4096),
            reply_enc: xdr::XdrEncoder::with_capacity(4096),
            reply_wire: Vec::with_capacity(4096),
            stats: TransportStats::default(),
        }
    }

    /// The environment this transport models.
    pub fn guest(&self) -> &Guest {
        &self.guest
    }

    /// Extract one complete record-marked message from the head of `buf`,
    /// returning its total length in bytes (headers included), or `None`.
    fn complete_record_len(buf: &[u8]) -> Option<usize> {
        let mut off = 0;
        loop {
            if buf.len() < off + 4 {
                return None;
            }
            let word = u32::from_be_bytes(buf[off..off + 4].try_into().unwrap());
            let len = (word & 0x7fff_ffff) as usize;
            let last = word & 0x8000_0000 != 0;
            off += 4 + len;
            if buf.len() < off {
                return None;
            }
            if last {
                return Some(off);
            }
        }
    }

    /// Carry `bytes` from `from` to `to` through the virtio/TCP machinery,
    /// returning the reassembled bytes and the number of wire segments.
    fn carry(
        from: &mut TcpEndpoint,
        from_features: VirtioFeatures,
        to: &mut TcpEndpoint,
        to_mrg_rxbuf: bool,
        wire_mss: usize,
        bytes: &[u8],
    ) -> io::Result<(Vec<u8>, u64)> {
        let supers = from.send(bytes);
        let frames = guest_tx(from_features, supers, wire_mss);
        let mut wire_count = 0u64;
        for frame in frames {
            for seg in host_segment(frame) {
                wire_count += 1;
                // RX buffer handling (copies are charged by the cost model;
                // here we exercise the functional path).
                let (payload, _bufs, _copies) = if to_mrg_rxbuf {
                    deliver_mrg(&seg.payload, 4096)
                } else {
                    deliver_fixed(&seg.payload)
                };
                let seg = Segment { payload, ..seg };
                if !to.receive(&seg) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "segment rejected (checksum or sequencing)",
                    ));
                }
            }
        }
        Ok((to.read(usize::MAX), wire_count))
    }

    /// Process one buffered request end-to-end.
    fn process_one(&mut self, record_len: usize) -> io::Result<()> {
        // Client → server through the functional stacks. The request is
        // carried straight out of `pending_out` — no per-call drain copy.
        let wire_mss = self.guest.costs.mtu.saturating_sub(40).max(1);
        let (at_server, segs_up) = Self::carry(
            &mut self.client_ep,
            self.guest.features,
            &mut self.server_ep,
            true, // GPU node negotiates mrg_rxbuf
            wire_mss,
            &self.pending_out[..record_len],
        )?;
        debug_assert_eq!(&at_server[..], &self.pending_out[..record_len]);
        self.pending_out.drain(..record_len);

        // Server executes (service methods charge the clock themselves).
        // The record reassembly buffer and the reply encoder are pooled on
        // the transport, so steady state costs one reassembly copy and no
        // allocation.
        let mut cursor = io::Cursor::new(&at_server);
        oncrpc::record::read_record_into(
            &mut cursor,
            &mut self.record_buf,
            oncrpc::record::MAX_RECORD,
        )
        .map_err(rpc_to_io)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "empty record"))?;
        self.server
            .handle_record_into(&self.record_buf, &mut self.reply_enc)
            .map_err(rpc_to_io)?;
        self.reply_wire.clear();
        oncrpc::record::write_record(
            &mut self.reply_wire,
            self.reply_enc.as_slice(),
            oncrpc::record::DEFAULT_MAX_FRAGMENT,
        )
        .map_err(rpc_to_io)?;

        // Server → client.
        let (at_client, segs_down) = Self::carry(
            &mut self.server_ep,
            VirtioFeatures::linux_driver(),
            &mut self.client_ep,
            self.guest.costs.virtq.mrg_rxbuf,
            wire_mss,
            &self.reply_wire,
        )?;

        // Charge the network legs (server exec already charged).
        let timing = self.path.rpc_round(record_len, at_client.len(), 0);
        self.clock.advance(timing.total_ns());

        self.stats.round_trips += 1;
        self.stats.wire_segments += segs_up + segs_down;
        self.stats.bytes_sent += record_len as u64;
        self.stats.bytes_received += at_client.len() as u64;

        self.incoming.drain(..self.incoming_off);
        self.incoming_off = 0;
        // Reply buffering copy on the receive side (tiny for HtoD calls).
        oncrpc::telemetry::add_memmoved(at_client.len());
        self.incoming.extend_from_slice(&at_client);
        Ok(())
    }
}

fn rpc_to_io(e: RpcError) -> io::Error {
    io::Error::other(format!("in-process server error: {e}"))
}

impl Write for SimTransport {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        // Buffering copy into the transport's send buffer — the analogue of
        // a real socket's copy into the kernel; charged to copy telemetry.
        oncrpc::telemetry::add_memmoved(buf.len());
        self.pending_out.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        while let Some(len) = Self::complete_record_len(&self.pending_out) {
            self.process_one(len)?;
        }
        Ok(())
    }
}

impl Read for SimTransport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.incoming_off >= self.incoming.len() {
            // The client wrote a request and is now waiting for the reply.
            self.flush()?;
            if self.incoming_off >= self.incoming.len() {
                return Ok(0); // clean EOF: nothing outstanding
            }
        }
        let avail = &self.incoming[self.incoming_off..];
        let n = avail.len().min(buf.len());
        buf[..n].copy_from_slice(&avail[..n]);
        self.incoming_off += n;
        Ok(n)
    }
}

impl Transport for SimTransport {
    fn describe(&self) -> String {
        format!("sim:{}", self.guest.costs.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{make_rpc_server, CricketServer, ServerConfig};
    use cricket_proto::CricketV1Client;
    use unikernel::GuestKind;

    fn client_for(kind: GuestKind) -> (CricketV1Client, Arc<SimClock>) {
        let clock = SimClock::new();
        let server = CricketServer::new(ServerConfig::default(), Arc::clone(&clock));
        let rpc = make_rpc_server(server);
        let t = SimTransport::new(rpc, Guest::new(kind), Arc::clone(&clock));
        (CricketV1Client::new(Box::new(t)), clock)
    }

    #[test]
    fn calls_work_and_advance_virtual_time() {
        let (mut c, clock) = client_for(GuestKind::RustyHermit);
        assert_eq!(clock.now_ns(), 0);
        let count = c.cuda_get_device_count().unwrap().into_result().unwrap();
        assert_eq!(count, 4);
        let t1 = clock.now_ns();
        assert!(t1 > 20_000, "one hermit call should cost > 20 µs, got {t1}");
        c.rpc_null().unwrap();
        assert!(clock.now_ns() > t1);
    }

    #[test]
    fn native_calls_are_faster_than_hermit() {
        let (mut native, cn) = client_for(GuestKind::NativeLinux);
        let (mut hermit, ch) = client_for(GuestKind::RustyHermit);
        for _ in 0..10 {
            native.cuda_get_device_count().unwrap();
            hermit.cuda_get_device_count().unwrap();
        }
        assert!(
            ch.now_ns() > 2 * cn.now_ns(),
            "hermit {} vs native {}",
            ch.now_ns(),
            cn.now_ns()
        );
    }

    #[test]
    fn memory_roundtrip_through_full_stack() {
        let (mut c, _clock) = client_for(GuestKind::Unikraft);
        let ptr = c.cuda_malloc(&(1 << 20)).unwrap().into_result().unwrap();
        let data: Vec<u8> = (0..1 << 20).map(|i| (i * 131 % 251) as u8).collect();
        assert_eq!(c.cuda_memcpy_htod(&ptr, &data).unwrap(), 0);
        let back = c
            .cuda_memcpy_dtoh(&ptr, &(data.len() as u64))
            .unwrap()
            .into_result()
            .unwrap();
        assert_eq!(back, data);
        assert_eq!(c.cuda_free(&ptr).unwrap(), 0);
    }

    #[test]
    fn bulk_transfer_uses_many_wire_segments() {
        let clock = SimClock::new();
        let server = CricketServer::new(ServerConfig::default(), Arc::clone(&clock));
        let rpc = make_rpc_server(server);
        let t = SimTransport::new(rpc, Guest::new(GuestKind::RustyHermit), Arc::clone(&clock));
        let mut c = CricketV1Client::new(Box::new(t));
        let ptr = c.cuda_malloc(&(4 << 20)).unwrap().into_result().unwrap();
        let data = vec![9u8; 4 << 20];
        c.cuda_memcpy_htod(&ptr, &data).unwrap();
        // 4 MiB over ~8960-byte wire segments ≈ 470 segments minimum.
        // (Transport stats live inside the boxed transport; assert via time:
        // a 4 MiB hermit H2D at ~1 GiB/s must cost at least 3 ms.)
        assert!(clock.now_ns() > 3_000_000, "clock={}", clock.now_ns());
    }

    #[test]
    fn timing_scales_with_payload_size() {
        let (mut c, clock) = client_for(GuestKind::LinuxVm);
        let ptr = c.cuda_malloc(&(8 << 20)).unwrap().into_result().unwrap();
        let t0 = clock.now_ns();
        c.cuda_memcpy_htod(&ptr, &vec![1u8; 1 << 20]).unwrap();
        let small = clock.now_ns() - t0;
        let t1 = clock.now_ns();
        c.cuda_memcpy_htod(&ptr, &vec![1u8; 8 << 20]).unwrap();
        let big = clock.now_ns() - t1;
        assert!(big > 4 * small, "big={big} small={small}");
    }
}
