//! The Cricket service: generated-trait implementation over the simulated
//! GPU, with per-API host-side cost accounting.
//!
//! Every call charges the shared virtual clock with (a) a base dispatch
//! cost — the Cricket server's RPC handling plus the CUDA driver entry — and
//! (b) the device time the operation consumes. The network legs around the
//! call are charged by the transport (see [`crate::transport`]).

use crate::checkpoint;
use crate::migrate::{MigBlob, MigKind, SessionMeta};
use crate::scheduler::{QosSpec, Scheduler, SchedulerPolicy, SessionId};
use cricket_proto::{
    cricket_v1, BatchReceipt, BatchResult, DataResult, DeviceProp, FloatResult, IntResult, MemInfo,
    MemInfoResult, PropResult, QosParams, RpcDim3, ServerStats, U64Result,
};
use oncrpc::ReplayCache;
use parking_lot::Mutex;
use simnet::SimClock;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use vgpu::{Device, DeviceProperties, Dim3, Submit, VgpuError, VgpuResult};

/// Handles for library contexts (cuBLAS/cuSolver) live in a range disjoint
/// from device handles.
const LIB_HANDLE_BASE: u64 = 0x8000_0000_0000;

/// Device heap spacing: device `i`'s pointers live in
/// `[(i+1)·HEAP_STRIDE, ...)`, so any pointer identifies its device.
const HEAP_STRIDE: u64 = vgpu::memory::HEAP_BASE;

/// Device handle spacing: device `i`'s module/function/stream/event handles
/// start at `0x10 + i·HANDLE_STRIDE`.
const HANDLE_STRIDE: u64 = 0x1000_0000;

/// At most this many simulated GPUs per server (keeps the address layout
/// disjoint from the library-handle range).
pub const MAX_DEVICES: usize = 8;

/// Host-side cost of one API call: Cricket's RPC dispatch + CUDA driver
/// entry. Dominates simple calls like `cudaGetDeviceCount` (Fig. 6a).
const DISPATCH_NS: u64 = 6_000;

/// Host-side cost of one sub-op inside a command batch: the CUDA driver
/// entry alone. The RPC dispatch share of [`DISPATCH_NS`] is paid once per
/// batch, which is exactly the per-call overhead coalescing amortizes.
const BATCH_OP_NS: u64 = 800;

/// Preemption point cadence inside a `CRICKET_BATCH_EXEC` slice: after this
/// many sub-ops under one issue turn, ask the scheduler whether a more
/// deserving waiter is queued and, if so, requeue the rest of the slice.
const BATCH_PREEMPT_OPS: u32 = 32;

/// Device-ns variant of [`BATCH_PREEMPT_OPS`]: a single slice may also not
/// charge more than this much device time between preemption checks.
const BATCH_PREEMPT_NS: u64 = 250_000;

/// One decoded `CRICKET_BATCH_EXEC` sub-op. Bulk payloads borrow from the
/// request record — the batch body rides the same zero-copy path as
/// immediate calls.
#[derive(Debug, Clone, Copy)]
enum BatchOp<'a> {
    MemcpyHtod {
        dst: u64,
        data: &'a [u8],
    },
    /// Zero-page-elided H2D payload; `enc` is the sparse codec blob,
    /// expanded at issue time so only literal pages travel the wire.
    MemcpyHtodSparse {
        dst: u64,
        enc: &'a [u8],
    },
    MemcpyDtod {
        dst: u64,
        src: u64,
        len: u64,
    },
    Memset {
        ptr: u64,
        value: i32,
        len: u64,
    },
    LaunchKernel {
        func: u64,
        grid: Dim3,
        block: Dim3,
        shared: u32,
        stream: u64,
        params: &'a [u8],
    },
    EventRecord {
        event: u64,
        stream: u64,
    },
    FftExec {
        plan: u64,
        kind: i32,
        idata: u64,
        odata: u64,
        dir: i32,
    },
}

/// Decode a batch body: `u32` op count, then per op a `u32` proc number
/// followed by that procedure's ordinary XDR argument stream. Any decode
/// error or unknown/non-batchable proc rejects the whole batch as garbage
/// — nothing has been issued yet, so the reject is side-effect free.
fn decode_batch(body: &[u8]) -> Result<Vec<BatchOp<'_>>, oncrpc::AcceptStat> {
    let garbage = |_| oncrpc::AcceptStat::GarbageArgs;
    let mut dec = xdr::XdrDecoder::new(body);
    let count = dec.get_u32().map_err(garbage)? as usize;
    let mut ops = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let proc = dec.get_u32().map_err(garbage)?;
        let op = match proc {
            cricket_v1::CUDA_MEMCPY_HTOD => BatchOp::MemcpyHtod {
                dst: dec.get_u64().map_err(garbage)?,
                data: dec.get_opaque_ref().map_err(garbage)?,
            },
            cricket_v1::CUDA_MEMCPY_HTOD_SPARSE => BatchOp::MemcpyHtodSparse {
                dst: dec.get_u64().map_err(garbage)?,
                enc: dec.get_opaque_ref().map_err(garbage)?,
            },
            cricket_v1::CUDA_MEMCPY_DTOD => BatchOp::MemcpyDtod {
                dst: dec.get_u64().map_err(garbage)?,
                src: dec.get_u64().map_err(garbage)?,
                len: dec.get_u64().map_err(garbage)?,
            },
            cricket_v1::CUDA_MEMSET => BatchOp::Memset {
                ptr: dec.get_u64().map_err(garbage)?,
                value: dec.get_i32().map_err(garbage)?,
                len: dec.get_u64().map_err(garbage)?,
            },
            cricket_v1::CUDA_LAUNCH_KERNEL => BatchOp::LaunchKernel {
                func: dec.get_u64().map_err(garbage)?,
                grid: dim(dec.get::<RpcDim3>().map_err(garbage)?),
                block: dim(dec.get::<RpcDim3>().map_err(garbage)?),
                shared: dec.get_u32().map_err(garbage)?,
                stream: dec.get_u64().map_err(garbage)?,
                params: dec.get_opaque_ref().map_err(garbage)?,
            },
            cricket_v1::CUDA_EVENT_RECORD => BatchOp::EventRecord {
                event: dec.get_u64().map_err(garbage)?,
                stream: dec.get_u64().map_err(garbage)?,
            },
            cricket_v1::CUFFT_EXEC_C2C | cricket_v1::CUFFT_EXEC_Z2Z => BatchOp::FftExec {
                plan: dec.get_u64().map_err(garbage)?,
                kind: if proc == cricket_v1::CUFFT_EXEC_C2C {
                    vgpu::fft::CUFFT_C2C
                } else {
                    vgpu::fft::CUFFT_Z2Z
                },
                idata: dec.get_u64().map_err(garbage)?,
                odata: dec.get_u64().map_err(garbage)?,
                dir: dec.get_i32().map_err(garbage)?,
            },
            _ => return Err(oncrpc::AcceptStat::GarbageArgs),
        };
        ops.push(op);
    }
    dec.finish().map_err(garbage)?;
    Ok(ops)
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Properties of device 0 (the paper's A100).
    pub props: DeviceProperties,
    /// Number of simulated devices. The paper's GPU node has four — one
    /// A100, two T4, one P40 — and that is the layout used here: device 0
    /// gets `props`, devices 1–2 are T4s, device 3 is a P40 (further
    /// devices cycle T4). Sessions select with `cudaSetDevice`.
    pub device_count: i32,
    /// QoS / overload-control configuration.
    pub qos: QosServerConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            props: DeviceProperties::a100(),
            device_count: 4,
            qos: QosServerConfig::default(),
        }
    }
}

/// Server-wide QoS and overload-control configuration
/// ([`crate::ServerBuilder::qos`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QosServerConfig {
    /// Overload watermark: once this many sessions are live, *new* sessions
    /// are shed with `CRICKET_BUSY` (established sessions keep running).
    /// 0 = unlimited.
    pub max_sessions: u32,
    /// Retry-after hint carried by admission sheds, nanoseconds.
    pub admission_retry_ns: u64,
}

impl Default for QosServerConfig {
    fn default() -> Self {
        Self {
            max_sessions: 0,
            admission_retry_ns: 2_000_000,
        }
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct StatsInner {
    total_calls: u64,
    bytes_in: u64,
    bytes_out: u64,
    kernels_launched: u64,
}

/// Everything a session has created and not yet destroyed. Tracked so the
/// server can reclaim it all when the client vanishes mid-session (TCP
/// reset, unikernel crash) instead of leaking vGPU state forever.
#[derive(Debug, Default, Clone)]
struct SessionResources {
    mem: HashSet<u64>,
    streams: HashSet<u64>,
    events: HashSet<u64>,
    modules: HashSet<u64>,
    blas: HashSet<u64>,
    solvers: HashSet<u64>,
    ffts: HashSet<u64>,
}

/// What [`CricketServer::release_session`] reclaimed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SessionCleanup {
    /// Device memory allocations freed.
    pub allocations: usize,
    /// Streams destroyed.
    pub streams: usize,
    /// Events destroyed.
    pub events: usize,
    /// Modules unloaded.
    pub modules: usize,
    /// cuBLAS/cuSolver/cuFFT handles dropped.
    pub lib_handles: usize,
}

impl SessionCleanup {
    /// Total number of reclaimed resources.
    pub fn total(&self) -> usize {
        self.allocations + self.streams + self.events + self.modules + self.lib_handles
    }
}

/// An inbound migration staged by `MIG_APPLY_BASE`/`MIG_APPLY_DELTA`,
/// keyed by client token. Until `ready`, the token gate refuses the
/// client (the source is still streaming); the client's first call after
/// cutover claims it into a live session.
struct Adoption {
    resources: SessionResources,
    current_device: usize,
    default_streams: Vec<(usize, u64)>,
    ready: bool,
    applied_epochs: u32,
}

/// The Cricket server state shared by all sessions.
pub struct CricketServer {
    devices: Vec<Mutex<Device>>,
    /// Per-session current device (`cudaSetDevice`); absent = device 0.
    session_device: Mutex<HashMap<SessionId, usize>>,
    /// Original module images by handle (checkpoint support).
    module_images: Mutex<HashMap<u64, Vec<u8>>>,
    solvers: Mutex<HashMap<u64, vgpu::solver::SolverDn>>,
    fft_plans: Mutex<HashMap<u64, vgpu::fft::FftPlan>>,
    blas_handles: Mutex<HashSet<u64>>,
    next_lib_handle: AtomicU64,
    /// Live resources per session, reclaimed on [`Self::release_session`].
    session_resources: Mutex<HashMap<SessionId, SessionResources>>,
    /// Lazily created per-session default streams, one per (session,
    /// device): the stream the client's handle `0` is remapped to. Giving
    /// each session its own timeline is what lets independent sessions
    /// overlap on the device instead of serializing on stream 0.
    session_streams: Mutex<HashMap<(SessionId, usize), u64>>,
    /// GPU-sharing scheduler.
    pub scheduler: Scheduler,
    clock: Arc<SimClock>,
    stats: Mutex<StatsInner>,
    sessions_seen: Mutex<HashSet<SessionId>>,
    cfg: ServerConfig,
    /// The transport's shared at-most-once replay cache (attached by the
    /// builder); migration ships a client's entries with the final delta.
    replay: Mutex<Option<Arc<ReplayCache>>>,
    /// Client token → live session id, maintained by the token gate.
    token_sessions: Mutex<HashMap<u64, SessionId>>,
    /// Tokens evicted by a migration cutover: the gate refuses them so
    /// the client reconnects and resolves its new home.
    evicted_tokens: Mutex<HashSet<u64>>,
    /// Sessions whose disconnect-triggered release was deferred because
    /// their token was evicted mid-migration (the final delta still has
    /// to read their state); reclaimed by `mig_finalize_source` or on
    /// `readmit_token`.
    deferred_release: Mutex<HashSet<SessionId>>,
    /// Inbound migrations staged by `MIG_APPLY_*`, by client token.
    adoptions: Mutex<HashMap<u64, Adoption>>,
    /// Calls admitted through the token gate and not yet completed, by
    /// token. Eviction drains this before the final snapshot so a call
    /// that slipped past the gate cannot mutate memory the final delta
    /// already captured.
    inflight: Mutex<HashMap<u64, usize>>,
    /// Signalled whenever an in-flight count drops.
    quiesce: parking_lot::Condvar,
}

impl CricketServer {
    /// Create a server on `clock` with the given configuration.
    pub fn new(cfg: ServerConfig, clock: Arc<SimClock>) -> Arc<Self> {
        let count = (cfg.device_count.max(1) as usize).min(MAX_DEVICES);
        let devices = (0..count)
            .map(|i| {
                // The paper's GPU-node layout: A100, T4, T4, P40.
                let props = match i {
                    0 => cfg.props.clone(),
                    3 => DeviceProperties::p40(),
                    _ => DeviceProperties::t4(),
                };
                Mutex::new(Device::with_bases(
                    props,
                    Arc::clone(&clock),
                    (i as u64 + 1) * HEAP_STRIDE,
                    0x10 + i as u64 * HANDLE_STRIDE,
                ))
            })
            .collect();
        Arc::new(Self {
            devices,
            session_device: Mutex::new(HashMap::new()),
            module_images: Mutex::new(HashMap::new()),
            solvers: Mutex::new(HashMap::new()),
            fft_plans: Mutex::new(HashMap::new()),
            blas_handles: Mutex::new(HashSet::new()),
            next_lib_handle: AtomicU64::new(LIB_HANDLE_BASE),
            session_resources: Mutex::new(HashMap::new()),
            session_streams: Mutex::new(HashMap::new()),
            scheduler: Scheduler::new(SchedulerPolicy::Fifo),
            clock,
            stats: Mutex::new(StatsInner::default()),
            sessions_seen: Mutex::new(HashSet::new()),
            cfg,
            replay: Mutex::new(None),
            token_sessions: Mutex::new(HashMap::new()),
            evicted_tokens: Mutex::new(HashSet::new()),
            deferred_release: Mutex::new(HashSet::new()),
            adoptions: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            quiesce: parking_lot::Condvar::new(),
        })
    }

    /// A default A100 server on a fresh clock.
    pub fn a100() -> Arc<Self> {
        Self::new(ServerConfig::default(), SimClock::new())
    }

    /// Device-utilization telemetry for device `idx`: `(busy_span_ns,
    /// device_time_ns)` — the merged span during which at least one stream
    /// had work running vs. the sum of all enqueued command durations.
    /// `device_time / busy_span > 1` means streams genuinely overlapped.
    pub fn device_utilization(&self, idx: usize) -> Option<(u64, u64)> {
        let mut d = self.devices.get(idx)?.lock();
        let span = d.busy_span_ns();
        Some((span, d.stats.device_time_ns))
    }

    /// Retired-command log of device `idx` (drains the log). Test hook for
    /// asserting retirement order.
    pub fn drain_retired(&self, idx: usize) -> Vec<vgpu::Retired> {
        self.devices
            .get(idx)
            .map(|d| d.lock().take_retired())
            .unwrap_or_default()
    }

    /// The clock this server charges.
    pub fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }

    /// Load snapshot for the fleet directory ([`oncrpc::portmap`] shard
    /// heartbeats): free/total device memory summed across all vgpus, the
    /// shard's cumulative virtual service time (the clock only moves when
    /// this server dispatches work, so `now_ns` *is* served time), and the
    /// number of live sessions.
    pub fn load_report(&self) -> oncrpc::LoadReport {
        let (mut free, mut total) = (0u64, 0u64);
        for d in &self.devices {
            let (f, t) = d.lock().mem_info();
            free += f;
            total += t;
        }
        let sessions = self.sessions_seen.lock().len() as u32;
        // QoS pressure in permille: occupancy against the session watermark,
        // saturating at 1000 whenever calls were shed since the last report
        // (the directory steers placement away from saturated shards).
        let max = self.cfg.qos.max_sessions;
        let mut qos_pressure = if max > 0 {
            (u64::from(sessions) * 1000 / u64::from(max)).min(1000) as u32
        } else {
            0
        };
        if self.scheduler.take_recent_sheds() > 0 {
            qos_pressure = 1000;
        }
        oncrpc::LoadReport {
            free_mem: free,
            total_mem: total,
            served_ns: self.clock.now_ns(),
            sessions,
            qos_pressure,
        }
    }

    /// Admission control, consulted by the QoS gate in front of dispatch
    /// before any procedure body runs. `Err(retry_after_ns)` sheds the call
    /// with `CRICKET_BUSY` — never executed, never replay-cached, safe to
    /// retry after the hint.
    ///
    /// `malloc_size` is the peeked `CUDA_MALLOC` argument, used to enforce
    /// the resident-bytes quota before the allocation happens.
    pub fn qos_admit(
        &self,
        session: SessionId,
        proc: u32,
        malloc_size: Option<u64>,
    ) -> Result<(), u64> {
        // Administrative, checkpoint, and migration procedures are always
        // admitted: an operator must be able to relax a quota or drain a
        // saturated server, and migration control never competes with
        // tenant work.
        if matches!(
            proc,
            cricket_v1::RPC_NULL
                | cricket_v1::CKPT_CAPTURE
                | cricket_v1::CKPT_RESTORE
                | cricket_v1::SRV_GET_STATS
                | cricket_v1::SRV_RESET_STATS
                | cricket_v1::SRV_SET_SCHEDULER
                | cricket_v1::MIG_APPLY_BASE
                | cricket_v1::MIG_APPLY_DELTA
                | cricket_v1::MIG_ABORT
                | cricket_v1::CRICKET_QOS_SET
        ) {
            return Ok(());
        }
        let cfg = self.cfg.qos;
        // Overload watermark: shed *new* sessions past the mark;
        // established sessions keep their service.
        if cfg.max_sessions > 0 {
            let seen = self.sessions_seen.lock();
            if !seen.contains(&session) && seen.len() >= cfg.max_sessions as usize {
                drop(seen);
                return Err(self.shed(cfg.admission_retry_ns));
            }
        }
        // Resident-bytes quota: refuse a malloc that would cross the
        // session's ceiling (frees bring it back under).
        if let Some(size) = malloc_size {
            let quota = self.scheduler.qos_of(session).max_resident_bytes;
            if quota > 0 && self.resident_bytes(session).saturating_add(size) > quota {
                return Err(self.shed(cfg.admission_retry_ns));
            }
        }
        // Device-time rate quota: each admitted work call spends one
        // dispatch quantum from the session's token bucket; the bucket
        // refills on the virtual clock. Host-answered (`Done`-class) calls
        // are free — they consume no device time.
        if matches!(crate::proc_class(proc), oncrpc::ProcClass::Parked) {
            if let Err(hint) = self
                .scheduler
                .rate_check(session, self.clock.now_ns(), DISPATCH_NS)
            {
                return Err(self.shed(hint));
            }
        }
        Ok(())
    }

    /// Record a shed and advance the virtual clock by one dispatch quantum.
    /// The advance matters: token buckets refill on this clock, so even a
    /// lone over-quota client makes progress by retrying — each rejection
    /// moves time forward toward its refill.
    fn shed(&self, retry_after_ns: u64) -> u64 {
        self.scheduler.note_shed();
        self.clock.advance(DISPATCH_NS);
        retry_after_ns
    }

    /// Bytes of device memory `session` currently holds, summed across all
    /// devices (computed on demand from the live allocation tables).
    pub fn resident_bytes(&self, session: SessionId) -> u64 {
        let ptrs = match self.session_resources.lock().get(&session) {
            Some(r) if !r.mem.is_empty() => r.mem.clone(),
            _ => return 0,
        };
        let mut total = 0u64;
        for d in &self.devices {
            let dev = d.lock();
            for (base, size) in dev.mem.live_allocations() {
                if ptrs.contains(&base) {
                    total += size;
                }
            }
        }
        total
    }

    /// Install a per-session QoS spec (`CRICKET_QOS_SET`). Administrative:
    /// charges no device time, like `srv_set_scheduler`.
    pub fn qos_set(&self, _s: SessionId, p: &QosParams) -> i32 {
        self.scheduler.set_qos(
            p.session,
            QosSpec {
                weight: p.weight,
                priority: p.priority,
                rate_ns_per_s: p.rate_ns_per_s,
                burst_ns: p.burst_ns,
                max_resident_bytes: p.max_resident_bytes,
            },
        );
        0
    }

    /// The session's current device ordinal.
    fn current_device(&self, session: SessionId) -> usize {
        self.session_device
            .lock()
            .get(&session)
            .copied()
            .unwrap_or(0)
    }

    /// Which device a pointer or handle belongs to, if any.
    fn device_of_token(&self, token: u64) -> Option<usize> {
        if (HEAP_STRIDE..LIB_HANDLE_BASE).contains(&token) {
            let idx = (token / HEAP_STRIDE - 1) as usize;
            (idx < self.devices.len()).then_some(idx)
        } else if (0x10..HEAP_STRIDE).contains(&token) {
            let idx = ((token - 0x10) / HANDLE_STRIDE) as usize;
            (idx < self.devices.len()).then_some(idx)
        } else {
            None
        }
    }

    /// Route by token (pointer/handle); fall back to the session's current
    /// device for tokens that carry no device identity (0, lib handles).
    fn route(&self, session: SessionId, token: u64) -> usize {
        self.device_of_token(token)
            .unwrap_or_else(|| self.current_device(session))
    }

    /// Mutate the session's live-resource record.
    fn track(&self, session: SessionId, f: impl FnOnce(&mut SessionResources)) {
        f(self.session_resources.lock().entry(session).or_default());
    }

    /// Reclaim everything `session` still holds: free its device memory,
    /// destroy its streams/events, unload its modules, and drop its library
    /// handles. Called when a client connection vanishes so a crashed or
    /// partitioned unikernel cannot leak vGPU state. Individual teardown
    /// errors are ignored — the resource may already be gone (explicit
    /// destroy raced with the disconnect, or a `device_reset` cleared it).
    pub fn release_session(&self, session: SessionId) -> SessionCleanup {
        // A session whose client token was evicted mid-migration is torn
        // down by the migration driver (`mig_finalize_source`) after the
        // final delta is exported — the disconnect-triggered release must
        // not free state that delta still has to read. If the migration
        // aborts instead, `readmit_token` performs the deferred release.
        {
            let tokens = self.token_sessions.lock();
            let evicted = self.evicted_tokens.lock();
            if tokens
                .iter()
                .any(|(t, &s)| s == session && evicted.contains(t))
            {
                self.deferred_release.lock().insert(session);
                return SessionCleanup::default();
            }
        }
        self.force_release(session)
    }

    /// [`Self::release_session`] without the mid-migration deferral.
    fn force_release(&self, session: SessionId) -> SessionCleanup {
        let res = self.session_resources.lock().remove(&session);
        self.token_sessions.lock().retain(|_, &mut s| s != session);
        self.deferred_release.lock().remove(&session);
        self.session_device.lock().remove(&session);
        self.sessions_seen.lock().remove(&session);
        self.session_streams
            .lock()
            .retain(|&(sess, _), _| sess != session);
        // Drop the session's scheduler state (priority, served ledgers) or
        // session churn grows those maps without bound.
        self.scheduler.forget(session);
        let mut out = SessionCleanup::default();
        let Some(res) = res else { return out };
        let on_device = |token: u64, f: &mut dyn FnMut(&mut Device, u64) -> bool| -> bool {
            match self.device_of_token(token) {
                Some(idx) => f(&mut self.devices[idx].lock(), token),
                None => false,
            }
        };
        for ptr in res.mem {
            if on_device(ptr, &mut |d, t| d.free(t).is_ok()) {
                out.allocations += 1;
            }
        }
        for h in res.streams {
            if on_device(h, &mut |d, t| d.stream_destroy(t).is_ok()) {
                out.streams += 1;
            }
        }
        for h in res.events {
            if on_device(h, &mut |d, t| d.event_destroy(t).is_ok()) {
                out.events += 1;
            }
        }
        for h in res.modules {
            if on_device(h, &mut |d, t| d.module_unload(t).is_ok()) {
                self.module_images.lock().remove(&h);
                out.modules += 1;
            }
        }
        for h in res.blas {
            if self.blas_handles.lock().remove(&h) {
                out.lib_handles += 1;
            }
        }
        for h in res.solvers {
            if self.solvers.lock().remove(&h).is_some() {
                out.lib_handles += 1;
            }
        }
        for h in res.ffts {
            if self.fft_plans.lock().remove(&h).is_some() {
                out.lib_handles += 1;
            }
        }
        out
    }

    /// The session's default stream on device `idx`, lazily created. The
    /// client's stream handle `0` is remapped here so every session gets
    /// its own device timeline (streams from different sessions overlap;
    /// work within one session's stream retires in issue order). Guards
    /// against `cudaDeviceReset` having destroyed the stream under us.
    fn session_stream(&self, session: SessionId, idx: usize) -> u64 {
        // Hot path: map lookup only. Taking the device lock here would
        // serialize every arriving call behind the current holder's
        // transfer *before* it reaches the scheduler queue, so the
        // scheduler would pick from a near-empty queue and sharing policy
        // would degrade to lock wake-up order. The cache is kept valid by
        // the two paths that destroy streams out from under it
        // (`device_reset`, `stream_destroy`), which purge stale entries.
        if let Some(&h) = self.session_streams.lock().get(&(session, idx)) {
            return h;
        }
        let (h, _t) = self.devices[idx].lock().stream_create();
        self.session_streams.lock().insert((session, idx), h);
        self.track(session, |r| {
            r.streams.insert(h);
        });
        h
    }

    /// Remap the wire stream handle: `0` means "the session's default
    /// stream on this device"; explicit handles pass through.
    fn resolve_stream(&self, session: SessionId, idx: usize, stream: u64) -> u64 {
        if stream == 0 {
            self.session_stream(session, idx)
        } else {
            stream
        }
    }

    /// Host-only path: charge the RPC dispatch cost but take no scheduler
    /// turn and hold no device for simulated time. For queries over
    /// host-visible state (device count, properties, current device).
    fn host_call<R>(&self, session: SessionId, host_ns: u64, f: impl FnOnce() -> R) -> R {
        self.sessions_seen.lock().insert(session);
        self.stats.lock().total_calls += 1;
        self.clock.advance(DISPATCH_NS + host_ns);
        f()
    }

    /// Asynchronous path: win an issue slot from the scheduler, enqueue
    /// onto the device, advance the clock only by the submission cost, and
    /// charge the queued device time to the session's ledger. The RPC
    /// returns while the work is still in flight on its stream.
    fn enqueue_at<R>(
        &self,
        session: SessionId,
        idx: usize,
        host_ns: u64,
        f: impl FnOnce(&mut Device) -> Result<(R, Submit), VgpuError>,
    ) -> Result<R, VgpuError> {
        self.sessions_seen.lock().insert(session);
        let turn = self.scheduler.begin(session);
        let mut dev = self.devices[idx].lock();
        self.stats.lock().total_calls += 1;
        self.clock.advance(DISPATCH_NS + host_ns);
        match f(&mut dev) {
            Ok((r, sub)) => {
                self.clock.advance(sub.submit_ns);
                turn.charge(sub.queued_ns);
                Ok(r)
            }
            Err(e) => Err(e),
        }
    }

    /// Synchronous-transfer path: enqueue like [`Self::enqueue_at`], then
    /// block the virtual clock until the command completes (sync memcpy
    /// semantics: ordered behind prior stream work, returns when done).
    fn sync_enqueue_at<R>(
        &self,
        session: SessionId,
        idx: usize,
        host_ns: u64,
        f: impl FnOnce(&mut Device) -> Result<(R, Submit), VgpuError>,
    ) -> Result<R, VgpuError> {
        self.sessions_seen.lock().insert(session);
        let turn = self.scheduler.begin(session);
        let mut dev = self.devices[idx].lock();
        self.stats.lock().total_calls += 1;
        self.clock.advance(DISPATCH_NS + host_ns);
        match f(&mut dev) {
            Ok((r, sub)) => {
                self.clock.advance(sub.submit_ns);
                self.clock.advance_to(sub.completes_at_ns);
                turn.charge(sub.queued_ns);
                Ok(r)
            }
            Err(e) => Err(e),
        }
    }

    /// Synchronization path: win an issue slot, run the op, then advance
    /// the clock by the wait `f` reports (time until the relevant timeline
    /// drains). Nothing new is charged to the ledger — the waited-on work
    /// was charged when it was enqueued.
    fn wait_at<R>(
        &self,
        session: SessionId,
        idx: usize,
        host_ns: u64,
        f: impl FnOnce(&mut Device) -> Result<(R, u64), VgpuError>,
    ) -> Result<R, VgpuError> {
        self.sessions_seen.lock().insert(session);
        let _turn = self.scheduler.begin(session);
        let mut dev = self.devices[idx].lock();
        self.stats.lock().total_calls += 1;
        self.clock.advance(DISPATCH_NS + host_ns);
        match f(&mut dev) {
            Ok((r, wait_ns)) => {
                self.clock.advance(wait_ns);
                Ok(r)
            }
            Err(e) => Err(e),
        }
    }

    /// [`Self::wait_at`] on the session's current device.
    fn wait_here<R>(
        &self,
        session: SessionId,
        host_ns: u64,
        f: impl FnOnce(&mut Device) -> Result<(R, u64), VgpuError>,
    ) -> Result<R, VgpuError> {
        let idx = self.current_device(session);
        self.wait_at(session, idx, host_ns, f)
    }

    /// [`Self::wait_at`] on the device owning `token`.
    fn wait_for<R>(
        &self,
        session: SessionId,
        token: u64,
        host_ns: u64,
        f: impl FnOnce(&mut Device) -> Result<(R, u64), VgpuError>,
    ) -> Result<R, VgpuError> {
        let idx = self.route(session, token);
        self.wait_at(session, idx, host_ns, f)
    }

    fn err_code(e: &VgpuError) -> i32 {
        e.code() as i32
    }

    // ---- plain-int results helper ----
    fn int_of(r: Result<(), VgpuError>) -> i32 {
        match r {
            Ok(()) => 0,
            Err(e) => Self::err_code(&e),
        }
    }

    // ---- API implementations (called by `Sessioned`) ----

    fn get_device_count(&self, s: SessionId) -> IntResult {
        // Host-only: the count is immutable server state; no scheduler
        // turn, no device mutex.
        let count = self.host_call(s, 1_000, || self.devices.len() as i32);
        IntResult::Data(count)
    }

    fn get_device_properties(&self, s: SessionId, ordinal: i32) -> PropResult {
        // Host-only: properties are immutable; the brief lock below copies
        // them out without taking a scheduler turn or device time.
        let r = self.host_call(s, 2_000, || {
            if ordinal < 0 || ordinal as usize >= self.devices.len() {
                Err(VgpuError::InvalidDevice(ordinal))
            } else {
                Ok(self.devices[ordinal as usize].lock().properties().clone())
            }
        });
        match r {
            Ok(p) => PropResult::Prop(DeviceProp {
                name: p.name,
                total_global_mem: p.total_global_mem,
                multi_processor_count: p.multi_processor_count,
                clock_rate_khz: p.clock_rate_khz,
                major: p.major,
                minor: p.minor,
                warp_size: p.warp_size,
                max_threads_per_block: p.max_threads_per_block,
                memory_bandwidth_bytes_per_sec: p.memory_bandwidth_bps,
            }),
            Err(e) => PropResult::Default(Self::err_code(&e)),
        }
    }

    fn set_device(&self, s: SessionId, ordinal: i32) -> i32 {
        // Host-only: updates per-session routing state, never the device.
        let r = self.host_call(s, 500, || {
            if (0..self.devices.len() as i32).contains(&ordinal) {
                self.session_device.lock().insert(s, ordinal as usize);
                Ok(())
            } else {
                Err(VgpuError::InvalidDevice(ordinal))
            }
        });
        Self::int_of(r)
    }

    fn get_device(&self, s: SessionId) -> IntResult {
        let current = self.host_call(s, 500, || self.current_device(s) as i32);
        IntResult::Data(current)
    }

    /// Streams belonging to `session` on device `idx` (its lazy default
    /// stream plus any it created explicitly).
    fn streams_of(&self, session: SessionId, idx: usize) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .session_resources
            .lock()
            .get(&session)
            .map(|r| {
                r.streams
                    .iter()
                    .copied()
                    .filter(|&h| self.device_of_token(h) == Some(idx))
                    .collect()
            })
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    fn device_synchronize(&self, s: SessionId) -> i32 {
        // Waits for *this session's* timelines on its current device —
        // other sessions' streams keep running (each client is its own
        // context behind the virtualization layer).
        let idx = self.current_device(s);
        let streams = self.streams_of(s, idx);
        Self::int_of(self.wait_at(s, idx, 1_000, |d| {
            let wait = streams
                .iter()
                .map(|&h| d.stream_synchronize(h).unwrap_or(0))
                .max()
                .unwrap_or(0);
            Ok(((), wait))
        }))
    }

    fn device_reset(&self, s: SessionId) -> i32 {
        let idx = self.current_device(s);
        let r = self.wait_at(s, idx, 5_000, |d| {
            let t = d.device_reset();
            Ok(((), t))
        });
        // The reset destroyed every stream on the device, including other
        // sessions' default streams; drop the stale mappings so they are
        // lazily recreated on next use.
        self.session_streams.lock().retain(|&(_, i), _| i != idx);
        self.module_images.lock().clear();
        self.solvers.lock().clear();
        self.fft_plans.lock().clear();
        self.blas_handles.lock().clear();
        Self::int_of(r)
    }

    fn malloc(&self, s: SessionId, size: u64) -> U64Result {
        match self.wait_here(s, 4_000, |d| d.malloc(size)) {
            Ok(ptr) => {
                self.track(s, |r| {
                    r.mem.insert(ptr);
                });
                U64Result::Data(ptr)
            }
            Err(e) => U64Result::Default(Self::err_code(&e)),
        }
    }

    fn free(&self, s: SessionId, ptr: u64) -> i32 {
        let r = self.wait_for(s, ptr, 3_500, |d| d.free(ptr).map(|t| ((), t)));
        if r.is_ok() {
            self.track(s, |res| {
                res.mem.remove(&ptr);
            });
        }
        Self::int_of(r)
    }

    fn memcpy_htod(&self, s: SessionId, dst: u64, data: &[u8]) -> i32 {
        self.stats.lock().bytes_in += data.len() as u64;
        let idx = self.route(s, dst);
        let st = self.session_stream(s, idx);
        // `data` is still the borrowed wire record; the write into device
        // memory below is the transfer endpoint itself (accounted as
        // `bytes_transferred` by the client), not an RPC-stack memmove.
        // Sync copy: ordered on the session's stream, blocks to completion.
        Self::int_of(self.sync_enqueue_at(s, idx, 3_000, |d| {
            d.memcpy_htod_stream(dst, data, st).map(|sub| ((), sub))
        }))
    }

    fn memcpy_dtoh(&self, s: SessionId, src: u64, len: u64) -> DataResult {
        let idx = self.route(s, src);
        let st = self.session_stream(s, idx);
        // Sync D2H memcpy is the canonical wait point: it drains the
        // session's stream, then pays the PCIe transfer.
        match self.sync_enqueue_at(s, idx, 3_000, |d| d.memcpy_dtoh_stream(src, len, st)) {
            Ok(bytes) => {
                self.stats.lock().bytes_out += bytes.len() as u64;
                DataResult::Data(bytes)
            }
            Err(e) => DataResult::Default(Self::err_code(&e)),
        }
    }

    /// One write stripe of a striped H2D copy: apply `data` at
    /// `dst + offset`. Reassembly is positional, so stripes from different
    /// lanes need no mutual ordering; exactly-once per stripe comes from
    /// the replay cache plus the lanes' disjoint xid spaces. The stripe
    /// seq travels for tracing only.
    fn memcpy_htod_stripe(
        &self,
        s: SessionId,
        dst: u64,
        offset: u64,
        _seq: u32,
        data: &[u8],
    ) -> i32 {
        self.memcpy_htod(s, dst.wrapping_add(offset), data)
    }

    /// One read stripe of a striped D2H copy: read `len` bytes from
    /// `src + offset`. Pure read — idempotent by construction.
    fn memcpy_dtoh_stripe(
        &self,
        s: SessionId,
        src: u64,
        offset: u64,
        len: u64,
        _seq: u32,
    ) -> DataResult {
        self.memcpy_dtoh(s, src.wrapping_add(offset), len)
    }

    /// Sparse H2D: expand the zero-page-elided blob, then take the plain
    /// H2D path — `bytes_in` thus counts the decoded length, keeping the
    /// paper's transfer accounting independent of the wire codec.
    fn memcpy_htod_sparse(&self, s: SessionId, dst: u64, enc: &[u8]) -> i32 {
        match oncrpc::sparse::decode(enc) {
            Ok(raw) => self.memcpy_htod(s, dst, &raw),
            Err(e) => Self::err_code(&VgpuError::InvalidValue(format!("sparse blob: {e}"))),
        }
    }

    fn memcpy_dtod(&self, s: SessionId, dst: u64, src: u64, len: u64) -> i32 {
        let src_dev = self.route(s, src);
        let dst_dev = self.route(s, dst);
        if src_dev == dst_dev {
            // Same-device copy is asynchronous: it rides the session's
            // stream and the RPC returns at submission.
            let st = self.session_stream(s, src_dev);
            return Self::int_of(self.enqueue_at(s, src_dev, 2_500, |d| {
                d.memcpy_dtod(dst, src, len, st).map(|sub| ((), sub))
            }));
        }
        // Peer copy (cudaMemcpyPeer semantics): staged through the host,
        // paying PCIe on both devices — synchronous on both legs.
        let src_st = self.session_stream(s, src_dev);
        let dst_st = self.session_stream(s, dst_dev);
        let staged = self.sync_enqueue_at(s, src_dev, 2_500, |d| {
            d.memcpy_dtoh_stream(src, len, src_st)
        });
        Self::int_of(staged.and_then(|bytes| {
            self.sync_enqueue_at(s, dst_dev, 2_500, |d| {
                d.memcpy_htod_stream(dst, &bytes, dst_st)
                    .map(|sub| ((), sub))
            })
        }))
    }

    fn memset(&self, s: SessionId, ptr: u64, value: i32, len: u64) -> i32 {
        let idx = self.route(s, ptr);
        let st = self.session_stream(s, idx);
        Self::int_of(self.enqueue_at(s, idx, 2_000, |d| {
            d.memset(ptr, value, len, st).map(|sub| ((), sub))
        }))
    }

    fn mem_get_info(&self, s: SessionId) -> MemInfoResult {
        // Host-only: a bookkeeping read; the brief lock copies two counters.
        let idx = self.current_device(s);
        let (free, total) = self.host_call(s, 1_500, || self.devices[idx].lock().mem_info());
        MemInfoResult::Info(MemInfo { free, total })
    }

    fn module_load(&self, s: SessionId, image: &[u8]) -> U64Result {
        self.stats.lock().bytes_in += image.len() as u64;
        match self.wait_here(s, 25_000, |d| d.module_load(image)) {
            Ok(h) => {
                // The retained copy is the only one: the image arrives as a
                // borrowed slice of the request record.
                self.module_images.lock().insert(h, image.to_vec());
                self.track(s, |r| {
                    r.modules.insert(h);
                });
                U64Result::Data(h)
            }
            Err(e) => U64Result::Default(Self::err_code(&e)),
        }
    }

    fn module_get_function(&self, s: SessionId, module: u64, name: &str) -> U64Result {
        match self.wait_for(s, module, 2_000, |d| d.module_get_function(module, name)) {
            Ok(h) => U64Result::Data(h),
            Err(e) => U64Result::Default(Self::err_code(&e)),
        }
    }

    fn module_unload(&self, s: SessionId, module: u64) -> i32 {
        let r = self.wait_for(s, module, 3_000, |d| {
            d.module_unload(module).map(|t| ((), t))
        });
        if r.is_ok() {
            self.module_images.lock().remove(&module);
            self.track(s, |res| {
                res.modules.remove(&module);
            });
        }
        Self::int_of(r)
    }

    #[allow(clippy::too_many_arguments)]
    fn launch_kernel(
        &self,
        s: SessionId,
        func: u64,
        grid: Dim3,
        block: Dim3,
        shared: u32,
        stream: u64,
        params: &[u8],
    ) -> i32 {
        let idx = self.route(s, func);
        let st = self.resolve_stream(s, idx, stream);
        // The launch is asynchronous: the RPC returns at submission and the
        // kernel's duration rides the session's stream timeline.
        let r = self.enqueue_at(s, idx, 3_500, |d| {
            d.launch_kernel(func, grid, block, shared, st, params)
                .map(|sub| ((), sub))
        });
        if r.is_ok() {
            self.stats.lock().kernels_launched += 1;
        }
        Self::int_of(r)
    }

    fn stream_create(&self, s: SessionId) -> U64Result {
        match self.wait_here(s, 1_500, |d| {
            let (h, t) = d.stream_create();
            Ok((h, t))
        }) {
            Ok(h) => {
                self.track(s, |r| {
                    r.streams.insert(h);
                });
                U64Result::Data(h)
            }
            Err(e) => U64Result::Default(Self::err_code(&e)),
        }
    }

    fn stream_destroy(&self, s: SessionId, h: u64) -> i32 {
        let r = self.wait_for(s, h, 1_000, |d| d.stream_destroy(h).map(|t| ((), t)));
        if r.is_ok() {
            self.track(s, |res| {
                res.streams.remove(&h);
            });
            // If this was a cached default stream, drop the mapping so the
            // lock-free fast path in `session_stream` never returns a
            // destroyed handle; it is lazily recreated on next use.
            self.session_streams
                .lock()
                .retain(|_, &mut cached| cached != h);
        }
        Self::int_of(r)
    }

    fn stream_synchronize(&self, s: SessionId, h: u64) -> i32 {
        let idx = self.route(s, h);
        let st = self.resolve_stream(s, idx, h);
        Self::int_of(self.wait_at(s, idx, 1_000, |d| d.stream_synchronize(st).map(|t| ((), t))))
    }

    fn event_create(&self, s: SessionId) -> U64Result {
        match self.wait_here(s, 800, |d| {
            let (h, t) = d.event_create();
            Ok((h, t))
        }) {
            Ok(h) => {
                self.track(s, |r| {
                    r.events.insert(h);
                });
                U64Result::Data(h)
            }
            Err(e) => U64Result::Default(Self::err_code(&e)),
        }
    }

    fn event_record(&self, s: SessionId, event: u64, stream: u64) -> i32 {
        // Event record is an enqueue: it stamps the stream's completion
        // frontier and returns immediately (the small cost below is the
        // device front-end work, not a wait).
        let idx = self.route(s, event);
        let st = self.resolve_stream(s, idx, stream);
        Self::int_of(self.wait_at(s, idx, 800, |d| d.event_record(event, st).map(|t| ((), t))))
    }

    fn event_synchronize(&self, s: SessionId, event: u64) -> i32 {
        Self::int_of(self.wait_for(s, event, 800, |d| {
            d.event_synchronize(event).map(|t| ((), t))
        }))
    }

    fn event_elapsed(&self, s: SessionId, start: u64, stop: u64) -> FloatResult {
        match self.wait_for(s, start, 800, |d| {
            d.event_elapsed_ms(start, stop).map(|v| (v, 0))
        }) {
            Ok(ms) => FloatResult::Data(ms),
            Err(e) => FloatResult::Default(Self::err_code(&e)),
        }
    }

    fn event_destroy(&self, s: SessionId, event: u64) -> i32 {
        let r = self.wait_for(s, event, 600, |d| d.event_destroy(event).map(|t| ((), t)));
        if r.is_ok() {
            self.track(s, |res| {
                res.events.remove(&event);
            });
        }
        Self::int_of(r)
    }

    fn new_lib_handle(&self) -> u64 {
        self.next_lib_handle.fetch_add(1, Ordering::Relaxed)
    }

    fn blas_create(&self, s: SessionId) -> U64Result {
        match self.wait_here(s, 5_000, |_d| Ok(((), 0))) {
            Ok(()) => {
                let h = self.new_lib_handle();
                self.blas_handles.lock().insert(h);
                self.track(s, |r| {
                    r.blas.insert(h);
                });
                U64Result::Data(h)
            }
            Err(e) => U64Result::Default(Self::err_code(&e)),
        }
    }

    fn blas_destroy(&self, s: SessionId, h: u64) -> i32 {
        let r = self.wait_here(s, 2_000, |_d| {
            if self.blas_handles.lock().remove(&h) {
                Ok(((), 0))
            } else {
                Err(VgpuError::InvalidHandle(h))
            }
        });
        if r.is_ok() {
            self.track(s, |res| {
                res.blas.remove(&h);
            });
        }
        Self::int_of(r)
    }

    #[allow(clippy::too_many_arguments)]
    fn gemm(
        &self,
        s: SessionId,
        h: u64,
        double: bool,
        transa: i32,
        transb: i32,
        m: i32,
        n: i32,
        k: i32,
        alpha: f64,
        a: u64,
        lda: i32,
        b: u64,
        ldb: i32,
        beta: f64,
        c: u64,
        ldc: i32,
    ) -> i32 {
        let idx = self.route(s, a);
        let st = self.resolve_stream(s, idx, 0);
        Self::int_of(self.enqueue_at(s, idx, 4_000, |d| {
            if !self.blas_handles.lock().contains(&h) {
                return Err(VgpuError::InvalidHandle(h));
            }
            if m < 0 || n < 0 || k < 0 || lda < 1 || ldb < 1 || ldc < 1 {
                return Err(VgpuError::InvalidValue("negative gemm dimension".into()));
            }
            let ta = vgpu::blas::Op::from_i32(transa)?;
            let tb = vgpu::blas::Op::from_i32(transb)?;
            let t = if double {
                vgpu::blas::dgemm(
                    d,
                    ta,
                    tb,
                    m as usize,
                    n as usize,
                    k as usize,
                    alpha,
                    a,
                    lda as usize,
                    b,
                    ldb as usize,
                    beta,
                    c,
                    ldc as usize,
                )?
            } else {
                vgpu::blas::sgemm(
                    d,
                    ta,
                    tb,
                    m as usize,
                    n as usize,
                    k as usize,
                    alpha as f32,
                    a,
                    lda as usize,
                    b,
                    ldb as usize,
                    beta as f32,
                    c,
                    ldc as usize,
                )?
            };
            // Results are materialized eagerly (the simulation computes in
            // host code) but the device-time cost rides the stream timeline.
            let sub = d.enqueue_library(st, "gemm", t)?;
            Ok(((), sub))
        }))
    }

    fn solver_create(&self, s: SessionId) -> U64Result {
        match self.wait_here(s, 10_000, |_d| Ok(((), 0))) {
            Ok(()) => {
                let h = self.new_lib_handle();
                self.solvers.lock().insert(h, vgpu::solver::SolverDn::new());
                self.track(s, |r| {
                    r.solvers.insert(h);
                });
                U64Result::Data(h)
            }
            Err(e) => U64Result::Default(Self::err_code(&e)),
        }
    }

    fn solver_destroy(&self, s: SessionId, h: u64) -> i32 {
        let r = self.wait_here(s, 3_000, |_d| {
            if self.solvers.lock().remove(&h).is_some() {
                Ok(((), 0))
            } else {
                Err(VgpuError::InvalidHandle(h))
            }
        });
        if r.is_ok() {
            self.track(s, |res| {
                res.solvers.remove(&h);
            });
        }
        Self::int_of(r)
    }

    fn getrf_buffer_size(&self, s: SessionId, h: u64, m: i32, n: i32) -> IntResult {
        let r = self.host_call(s, 2_000, || {
            let solvers = self.solvers.lock();
            let solver = solvers.get(&h).ok_or(VgpuError::InvalidHandle(h))?;
            solver.dgetrf_buffer_size(m, n)
        });
        match r {
            Ok(v) => IntResult::Data(v),
            Err(e) => IntResult::Default(Self::err_code(&e)),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn getrf(
        &self,
        s: SessionId,
        h: u64,
        m: i32,
        n: i32,
        a: u64,
        lda: i32,
        work: u64,
        ipiv: u64,
        info: u64,
    ) -> i32 {
        let idx = self.route(s, a);
        let st = self.resolve_stream(s, idx, 0);
        Self::int_of(self.enqueue_at(s, idx, 8_000, |d| {
            let mut solvers = self.solvers.lock();
            let solver = solvers.get_mut(&h).ok_or(VgpuError::InvalidHandle(h))?;
            let t = solver.dgetrf(d, m, n, a, lda, work, ipiv, info)?;
            let sub = d.enqueue_library(st, "getrf", t)?;
            Ok(((), sub))
        }))
    }

    #[allow(clippy::too_many_arguments)]
    fn getrs(
        &self,
        s: SessionId,
        h: u64,
        trans: i32,
        n: i32,
        nrhs: i32,
        a: u64,
        lda: i32,
        ipiv: u64,
        b: u64,
        ldb: i32,
        info: u64,
    ) -> i32 {
        let idx = self.route(s, a);
        let st = self.resolve_stream(s, idx, 0);
        Self::int_of(self.enqueue_at(s, idx, 6_000, |d| {
            let mut solvers = self.solvers.lock();
            let solver = solvers.get_mut(&h).ok_or(VgpuError::InvalidHandle(h))?;
            let t = solver.dgetrs(d, trans, n, nrhs, a, lda, ipiv, b, ldb, info)?;
            let sub = d.enqueue_library(st, "getrs", t)?;
            Ok(((), sub))
        }))
    }

    fn fft_plan_1d(&self, s: SessionId, n: i32, kind: i32, batch: i32) -> U64Result {
        match self.wait_here(s, 6_000, |_d| {
            Ok((vgpu::fft::FftPlan::plan_1d(n, kind, batch)?, 0))
        }) {
            Ok(plan) => {
                let h = self.new_lib_handle();
                self.fft_plans.lock().insert(h, plan);
                self.track(s, |r| {
                    r.ffts.insert(h);
                });
                U64Result::Data(h)
            }
            Err(e) => U64Result::Default(Self::err_code(&e)),
        }
    }

    fn fft_destroy(&self, s: SessionId, h: u64) -> i32 {
        let r = self.wait_here(s, 2_000, |_d| {
            if self.fft_plans.lock().remove(&h).is_some() {
                Ok(((), 0))
            } else {
                Err(VgpuError::InvalidHandle(h))
            }
        });
        if r.is_ok() {
            self.track(s, |res| {
                res.ffts.remove(&h);
            });
        }
        Self::int_of(r)
    }

    fn fft_exec(&self, s: SessionId, h: u64, kind: i32, idata: u64, odata: u64, dir: i32) -> i32 {
        let idx = self.route(s, idata);
        let st = self.resolve_stream(s, idx, 0);
        Self::int_of(self.enqueue_at(s, idx, 5_000, |d| {
            let plans = self.fft_plans.lock();
            let plan = plans.get(&h).ok_or(VgpuError::InvalidHandle(h))?;
            if plan.kind != kind {
                return Err(VgpuError::InvalidValue(format!(
                    "plan type {:#x} does not match exec type {kind:#x}",
                    plan.kind
                )));
            }
            let t = vgpu::fft::exec(d, plan, idata, odata, dir)?;
            let sub = d.enqueue_library(st, "fft", t)?;
            Ok(((), sub))
        }))
    }

    // ---- command batches (CRICKET_BATCH_EXEC) ----

    /// Execute a coalesced command batch: decode every sub-op, then issue
    /// them in order, taking **one scheduler turn per consecutive
    /// (device, stream) slice** instead of one per op, and paying the RPC
    /// dispatch cost once for the whole batch plus a small driver-entry
    /// cost per sub-op. A failed sub-op records its error code at its
    /// index and aborts the remainder of its slice (`BATCH_SKIPPED`);
    /// later slices — other streams' work — still run.
    fn batch_exec(&self, s: SessionId, body: &[u8]) -> Result<BatchResult, oncrpc::AcceptStat> {
        let ops = decode_batch(body)?;
        self.sessions_seen.lock().insert(s);
        {
            // Each sub-op is one CUDA API call in the paper's accounting;
            // coalescing changes the wire shape, not the call count.
            let mut st = self.stats.lock();
            st.total_calls += ops.len() as u64;
            for op in &ops {
                match op {
                    BatchOp::MemcpyHtod { data, .. } => st.bytes_in += data.len() as u64,
                    // Sparse sub-ops account their *decoded* length: the
                    // codec changes wire bytes, not how many bytes land in
                    // device memory. A corrupt header counts zero — the op
                    // itself fails at issue time.
                    BatchOp::MemcpyHtodSparse { enc, .. } => {
                        st.bytes_in += oncrpc::sparse::raw_len(enc).unwrap_or(0);
                    }
                    _ => {}
                }
            }
        }
        // One RPC dispatch for the whole batch — the coalescing win.
        self.clock.advance(DISPATCH_NS);
        let mut statuses = vec![0i32; ops.len()];
        let mut agg = vgpu::SubmitAggregate::default();
        let mut executed: u32 = 0;
        let mut kernels: u64 = 0;
        let mut i = 0;
        while i < ops.len() {
            // Cross-device D2D peer copies stage through the host on two
            // devices; they cannot share a single-device turn, so they run
            // through the ordinary synchronous path as their own slice.
            if let BatchOp::MemcpyDtod { dst, src, len } = ops[i] {
                if self.route(s, src) != self.route(s, dst) {
                    let code = self.memcpy_dtod(s, dst, src, len);
                    statuses[i] = code;
                    if code == 0 {
                        executed += 1;
                    }
                    i += 1;
                    continue;
                }
            }
            let idx = self.op_device(s, &ops[i]);
            let stream = self.op_stream(s, idx, &ops[i]);
            let mut j = i + 1;
            while j < ops.len()
                && self.op_device(s, &ops[j]) == idx
                && self.op_stream(s, idx, &ops[j]) == stream
                && !matches!(ops[j], BatchOp::MemcpyDtod { dst, src, .. }
                    if self.route(s, src) != self.route(s, dst))
            {
                j += 1;
            }
            // Issue the whole slice under one turn; the device lock and
            // turn drop together at the end of the slice. Every
            // BATCH_PREEMPT_OPS sub-ops (or BATCH_PREEMPT_NS of charged
            // device time) the turn is offered back: if the policy would
            // rather serve a queued waiter, the rest of the slice requeues
            // under a fresh turn, so a 1000-op batch cannot monopolize the
            // device against a higher-deficit tenant.
            let turn = self.scheduler.begin(s);
            let mut dev = self.devices[idx].lock();
            let mut failed = false;
            let mut resume_at = j;
            let mut since_ops: u32 = 0;
            let mut since_ns: u64 = 0;
            for (k, op) in ops.iter().enumerate().take(j).skip(i) {
                if failed {
                    statuses[k] = oncrpc::BATCH_SKIPPED;
                    continue;
                }
                if (since_ops >= BATCH_PREEMPT_OPS || since_ns >= BATCH_PREEMPT_NS)
                    && turn.should_yield()
                {
                    resume_at = k;
                    break;
                }
                self.clock.advance(BATCH_OP_NS);
                since_ops += 1;
                match self.issue_batch_op(&mut dev, op, stream) {
                    Ok(Some(sub)) => {
                        self.clock.advance(sub.submit_ns);
                        turn.charge(sub.queued_ns);
                        since_ns += sub.queued_ns;
                        agg.absorb(&sub);
                        executed += 1;
                        if matches!(op, BatchOp::LaunchKernel { .. }) {
                            kernels += 1;
                        }
                    }
                    Ok(None) => {
                        executed += 1;
                    }
                    Err(e) => {
                        statuses[k] = Self::err_code(&e);
                        failed = true;
                    }
                }
            }
            drop(dev);
            drop(turn);
            i = resume_at;
        }
        if kernels > 0 {
            self.stats.lock().kernels_launched += kernels;
        }
        Ok(BatchResult::Receipt(BatchReceipt {
            statuses: statuses.into(),
            executed,
            queued_ns: agg.queued_ns,
            last_completes_at_ns: agg.last_completes_at_ns,
        }))
    }

    /// Device a batch sub-op routes to (same rules as the immediate paths).
    fn op_device(&self, s: SessionId, op: &BatchOp<'_>) -> usize {
        match *op {
            BatchOp::MemcpyHtod { dst, .. } | BatchOp::MemcpyHtodSparse { dst, .. } => {
                self.route(s, dst)
            }
            BatchOp::MemcpyDtod { src, .. } => self.route(s, src),
            BatchOp::Memset { ptr, .. } => self.route(s, ptr),
            BatchOp::LaunchKernel { func, .. } => self.route(s, func),
            BatchOp::EventRecord { event, .. } => self.route(s, event),
            BatchOp::FftExec { idata, .. } => self.route(s, idata),
        }
    }

    /// Resolved stream of a batch sub-op on device `idx`. Ops without a
    /// wire stream argument ride the session's default stream, exactly as
    /// their immediate counterparts do.
    fn op_stream(&self, s: SessionId, idx: usize, op: &BatchOp<'_>) -> u64 {
        match *op {
            BatchOp::LaunchKernel { stream, .. } | BatchOp::EventRecord { stream, .. } => {
                self.resolve_stream(s, idx, stream)
            }
            _ => self.session_stream(s, idx),
        }
    }

    /// Issue one decoded sub-op on the locked device. `Ok(Some(sub))` for
    /// queue-backed commands, `Ok(None)` for host-side stamps (event
    /// record). All batched ops are asynchronous: the clock never advances
    /// to completion here — the next sync point drains the stream.
    fn issue_batch_op(
        &self,
        dev: &mut Device,
        op: &BatchOp<'_>,
        st: u64,
    ) -> Result<Option<Submit>, VgpuError> {
        match *op {
            BatchOp::MemcpyHtod { dst, data } => dev.memcpy_htod_stream(dst, data, st).map(Some),
            BatchOp::MemcpyHtodSparse { dst, enc } => {
                let raw = oncrpc::sparse::decode(enc)
                    .map_err(|e| VgpuError::InvalidValue(format!("sparse blob: {e}")))?;
                dev.memcpy_htod_stream(dst, &raw, st).map(Some)
            }
            BatchOp::MemcpyDtod { dst, src, len } => dev.memcpy_dtod(dst, src, len, st).map(Some),
            BatchOp::Memset { ptr, value, len } => dev.memset(ptr, value, len, st).map(Some),
            BatchOp::LaunchKernel {
                func,
                grid,
                block,
                shared,
                params,
                ..
            } => dev
                .launch_kernel(func, grid, block, shared, st, params)
                .map(Some),
            BatchOp::EventRecord { event, .. } => {
                let host_ns = dev.event_record(event, st)?;
                self.clock.advance(host_ns);
                Ok(None)
            }
            BatchOp::FftExec {
                plan,
                kind,
                idata,
                odata,
                dir,
            } => {
                let plans = self.fft_plans.lock();
                let p = plans.get(&plan).ok_or(VgpuError::InvalidHandle(plan))?;
                if p.kind != kind {
                    return Err(VgpuError::InvalidValue(format!(
                        "plan type {:#x} does not match exec type {kind:#x}",
                        p.kind
                    )));
                }
                let t = vgpu::fft::exec(dev, p, idata, odata, dir)?;
                dev.enqueue_library(st, "fft", t).map(Some)
            }
        }
    }

    fn ckpt_capture(&self, s: SessionId) -> DataResult {
        // Checkpoints cover device 0 (the A100 the evaluation uses).
        let r = self.wait_at(s, 0, 50_000, |d| {
            // A checkpoint is a full-device sync point: drain all streams
            // before reading device state.
            let drain = d.device_synchronize();
            let images = self.module_images.lock();
            let blob = checkpoint::capture(d, &images)?;
            // Serialization cost scales with snapshot size.
            let t = drain + (blob.len() as u64) / 8;
            Ok((blob, t))
        });
        match r {
            Ok(blob) => {
                self.stats.lock().bytes_out += blob.len() as u64;
                DataResult::Data(blob)
            }
            Err(e) => DataResult::Default(Self::err_code(&e)),
        }
    }

    fn ckpt_restore(&self, s: SessionId, blob: &[u8]) -> i32 {
        self.stats.lock().bytes_in += blob.len() as u64;
        Self::int_of(self.wait_at(s, 0, 50_000, |d| {
            let images = checkpoint::restore(d, blob, &self.cfg.props, &self.clock)?;
            *self.module_images.lock() = images;
            let t = (blob.len() as u64) / 8;
            Ok(((), t))
        }))
    }

    fn srv_stats(&self, _s: SessionId) -> ServerStats {
        let st = *self.stats.lock();
        let device_time_ns = self
            .devices
            .iter()
            .map(|d| d.lock().stats.device_time_ns)
            .sum();
        ServerStats {
            total_calls: st.total_calls,
            bytes_in: st.bytes_in,
            bytes_out: st.bytes_out,
            kernels_launched: st.kernels_launched,
            active_sessions: self.sessions_seen.lock().len() as u64,
            device_time_ns,
        }
    }

    fn srv_reset_stats(&self, _s: SessionId) -> i32 {
        *self.stats.lock() = StatsInner::default();
        self.sessions_seen.lock().clear();
        0
    }

    fn srv_set_scheduler(&self, _s: SessionId, policy: i32) -> i32 {
        match SchedulerPolicy::from_i32(policy) {
            Some(p) => {
                self.scheduler.set_policy(p);
                0
            }
            None => vgpu::CudaCode::InvalidValue as i32,
        }
    }

    // ---- live migration --------------------------------------------------

    /// Attach the transport's shared at-most-once replay cache so
    /// migration can ship a client's entries with the final delta.
    pub fn attach_replay(&self, replay: &Arc<ReplayCache>) {
        *self.replay.lock() = Some(Arc::clone(replay));
    }

    /// The live session currently bound to a client token, if any.
    pub fn session_of_token(&self, token: u64) -> Option<SessionId> {
        self.token_sessions.lock().get(&token).copied()
    }

    /// Token-gate hook (see `oncrpc::RpcServer::set_token_gate`): may a
    /// call from `token` arriving on `session` proceed?
    ///
    /// * evicted token → `false`: the connection closes and the client's
    ///   reconnect resolves the session's new home;
    /// * staged but unfinished inbound migration → `false`: the client
    ///   raced ahead of the final delta, retry until cutover completes;
    /// * ready inbound migration → claim it into this session, `true`;
    /// * otherwise record the token ↔ session binding and admit.
    pub fn observe_token(&self, token: u64, session: SessionId) -> bool {
        if self.evicted_tokens.lock().contains(&token) {
            return false;
        }
        let adoption = {
            let mut staged = self.adoptions.lock();
            match staged.get(&token) {
                Some(a) if !a.ready => return false,
                Some(_) => staged.remove(&token),
                None => None,
            }
        };
        match adoption {
            Some(a) => self.adopt(token, session, a),
            None => {
                let mut map = self.token_sessions.lock();
                if map.get(&token) != Some(&session) {
                    map.insert(token, session);
                }
            }
        }
        *self.inflight.lock().entry(token).or_insert(0) += 1;
        true
    }

    /// Gate completion hook: an admitted call from `token` finished.
    pub fn call_complete(&self, token: u64) {
        let mut inflight = self.inflight.lock();
        if let Some(n) = inflight.get_mut(&token) {
            *n -= 1;
            if *n == 0 {
                inflight.remove(&token);
            }
        }
        drop(inflight);
        self.quiesce.notify_all();
    }

    /// Install a ready adoption as the live state of `session`.
    fn adopt(&self, token: u64, session: SessionId, a: Adoption) {
        self.session_device.lock().insert(session, a.current_device);
        {
            let mut streams = self.session_streams.lock();
            for &(idx, h) in &a.default_streams {
                streams.insert((session, idx), h);
            }
        }
        self.session_resources.lock().insert(session, a.resources);
        self.sessions_seen.lock().insert(session);
        self.token_sessions.lock().insert(token, session);
    }

    /// Evict `token`: the gate refuses its calls from now on, closing the
    /// client's connection so its retransmission lands at the new home.
    /// Blocks (bounded) until calls already past the gate have completed —
    /// the final snapshot must not race a half-executed mutation whose
    /// reply the client will still receive.
    pub fn evict_token(&self, token: u64) {
        self.evicted_tokens.lock().insert(token);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let mut inflight = self.inflight.lock();
        while inflight.get(&token).copied().unwrap_or(0) > 0 {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                // Safety valve: a wedged call must not hang the cutover.
                break;
            }
            self.quiesce.wait_for(&mut inflight, left);
        }
    }

    /// Roll back an eviction (aborted migration): admit the token again
    /// and perform any release that was deferred while it was evicted.
    pub fn readmit_token(&self, token: u64) {
        self.evicted_tokens.lock().remove(&token);
        if let Some(session) = self.session_of_token(token) {
            let deferred = self.deferred_release.lock().remove(&session);
            if deferred {
                self.force_release(session);
            }
        }
    }

    /// Export one leg of the migration stream for `token`'s session.
    ///
    /// `known` is the set of block bases previous legs already shipped
    /// (empty for the base snapshot); it is updated to what the
    /// destination holds after applying this blob. Every export closes
    /// the per-device dirty-tracking window (`mark_epoch`), so at most
    /// one migration may stream per device at a time. A
    /// [`MigKind::Final`] export additionally fences all streams (the
    /// snapshot barrier) and attaches the client's replay entries.
    pub fn mig_export(
        &self,
        token: u64,
        known: &mut BTreeSet<u64>,
        kind: MigKind,
    ) -> VgpuResult<Vec<u8>> {
        let session = self.session_of_token(token).ok_or_else(|| {
            VgpuError::InvalidValue(format!("no live session for client token {token:#x}"))
        })?;
        let res = self
            .session_resources
            .lock()
            .get(&session)
            .cloned()
            .unwrap_or_default();
        let sorted = |set: &HashSet<u64>| {
            let mut v: Vec<u64> = set.iter().copied().collect();
            v.sort_unstable();
            v
        };
        let mut meta = SessionMeta {
            token,
            current_device: self.current_device(session) as u32,
            next_lib_handle: self.next_lib_handle.load(Ordering::SeqCst),
            blas: sorted(&res.blas),
            solvers: sorted(&res.solvers),
            ..SessionMeta::default()
        };
        {
            let images = self.module_images.lock();
            for h in sorted(&res.modules) {
                if let Some(img) = images.get(&h) {
                    meta.modules.push((h, img.clone()));
                }
            }
        }
        {
            let streams = self.session_streams.lock();
            meta.default_streams = streams
                .iter()
                .filter(|((s, _), _)| *s == session)
                .map(|(&(_, idx), &h)| (idx as u32, h))
                .collect();
            meta.default_streams.sort_unstable();
        }
        {
            let plans = self.fft_plans.lock();
            for h in sorted(&res.ffts) {
                if let Some(p) = plans.get(&h) {
                    meta.ffts.push((h, p.n as i32, p.kind, p.batch as i32));
                }
            }
        }

        let mut delta = vgpu::memory::MemDelta::default();
        for idx in 0..self.devices.len() {
            let known_here: BTreeSet<u64> = known
                .iter()
                .copied()
                .filter(|&b| self.device_of_token(b) == Some(idx))
                .collect();
            let mut dev = self.devices[idx].lock();
            if kind == MigKind::Final {
                // The CRAC-style snapshot barrier: retire every pending
                // command so the final delta is taken with nothing in
                // flight. Execution is eager, so this changes bookkeeping,
                // never memory.
                dev.fence_all_streams();
            }
            let mut d = dev.mem.delta_since(&known_here);
            // `delta_since` enumerates the whole device; other sessions'
            // blocks must not ride along.
            d.new_blocks.retain(|(b, _)| res.mem.contains(b));
            dev.mem.mark_epoch();
            meta.next_handles
                .push((idx as u32, dev.next_handle_value()));
            for (h, frontier) in dev.snapshot_stream_frontiers() {
                if res.streams.contains(&h) {
                    meta.streams.push((h, frontier));
                }
            }
            for (h, recorded) in dev.snapshot_event_states() {
                if res.events.contains(&h) {
                    meta.events.push((h, recorded));
                }
            }
            for (h, module, name) in dev.snapshot_functions() {
                if res.modules.contains(&module) {
                    meta.functions.push((h, module, name));
                }
            }
            delta.freed.extend(d.freed);
            delta.new_blocks.extend(d.new_blocks);
            delta.dirty.extend(d.dirty);
        }
        meta.functions.sort();
        meta.src_now_ns = self.clock.now_ns();

        for &b in &delta.freed {
            known.remove(&b);
        }
        for (b, _) in &delta.new_blocks {
            known.insert(*b);
        }

        let mut blob = MigBlob::new(kind, meta);
        blob.mem = delta;
        if kind == MigKind::Final {
            if let Some(r) = self.replay.lock().clone() {
                blob.replay = r.export_client(token);
                blob.replay.sort_by_key(|&(xid, _)| xid);
            }
        }
        Ok(blob.encode())
    }

    /// Bytes a naive full-snapshot migration of `token`'s session would
    /// move right now: every owned block plus every module image. The
    /// streamed-migration bench compares its cumulative payload to this.
    pub fn session_footprint(&self, token: u64) -> u64 {
        let Some(session) = self.session_of_token(token) else {
            return 0;
        };
        let res = self
            .session_resources
            .lock()
            .get(&session)
            .cloned()
            .unwrap_or_default();
        let mut total = 0u64;
        for &b in &res.mem {
            if let Some(idx) = self.device_of_token(b) {
                if let Ok(bytes) = self.devices[idx].lock().mem.block_bytes(b) {
                    total += bytes.len() as u64;
                }
            }
        }
        let images = self.module_images.lock();
        for h in &res.modules {
            total += images.get(h).map_or(0, |i| i.len() as u64);
        }
        total
    }

    /// Tear down the source side after a completed cutover: drop the
    /// client's replay entries (they now live at the destination) and
    /// force-release its session. The eviction marker stays, so late
    /// retransmissions on a half-dead connection remain refused.
    pub fn mig_finalize_source(&self, token: u64) -> SessionCleanup {
        if let Some(r) = self.replay.lock().clone() {
            r.forget_client(token);
        }
        match self.session_of_token(token) {
            Some(session) => self.force_release(session),
            None => SessionCleanup::default(),
        }
    }

    /// Apply one migration blob pushed by a source server's driver; the
    /// blob kind must be in `allow` (wire procs pin the direction).
    /// Returns the count of applied epochs for this token's stream. No
    /// scheduler turn and no clock charge: the stream must not perturb
    /// the destination's virtual timeline — the only clock effect is the
    /// forward alignment to the source's `src_now_ns`.
    pub fn mig_apply(&self, bytes: &[u8], allow: &[MigKind]) -> VgpuResult<u32> {
        self.stats.lock().bytes_in += bytes.len() as u64;
        let blob = MigBlob::decode(bytes)?;
        let kind = blob.kind();
        if !allow.contains(&kind) {
            return Err(VgpuError::InvalidValue(format!(
                "blob kind {kind:?} not allowed by this procedure"
            )));
        }
        let token = blob.meta.token;
        let mut staged = match kind {
            MigKind::Base => {
                // A fresh base replaces any half-applied previous attempt
                // and re-legitimizes a token this server itself evicted in
                // an earlier outbound migration (moving back home).
                self.discard_adoption(token);
                self.evicted_tokens.lock().remove(&token);
                Adoption {
                    resources: SessionResources::default(),
                    current_device: 0,
                    default_streams: Vec::new(),
                    ready: false,
                    applied_epochs: 0,
                }
            }
            MigKind::Delta | MigKind::Final => {
                self.adoptions.lock().remove(&token).ok_or_else(|| {
                    VgpuError::InvalidValue(format!(
                        "delta for token {token:#x} without a staged base"
                    ))
                })?
            }
        };
        if let Err(e) = self.apply_blob(&blob, &mut staged) {
            // Half-applied state is unusable; free whatever was placed so
            // a retried migration can start from a clean base.
            self.adoptions.lock().insert(token, staged);
            self.discard_adoption(token);
            return Err(e);
        }
        staged.applied_epochs += 1;
        if kind == MigKind::Final {
            if let Some(r) = self.replay.lock().clone() {
                r.import_client(token, blob.replay.clone());
            }
            staged.ready = true;
        }
        // Align this shard's virtual clock with the source so post-cutover
        // timing (event elapsed, batch receipts) continues byte-identically
        // on an otherwise idle destination.
        self.clock.advance_to(blob.meta.src_now_ns);
        let epochs = staged.applied_epochs;
        self.adoptions.lock().insert(token, staged);
        Ok(epochs)
    }

    /// Reconcile one blob into the staged adoption: memory delta first
    /// (frees → new blocks → dirty spans, routed to the owning device),
    /// then the full metadata diffed against what previous blobs placed.
    fn apply_blob(&self, blob: &MigBlob, staged: &mut Adoption) -> VgpuResult<()> {
        let meta = &blob.meta;
        let bad_dev =
            |t: u64| VgpuError::InvalidValue(format!("token {t:#x} maps to no local device"));

        for &b in blob
            .mem
            .freed
            .iter()
            .chain(blob.mem.new_blocks.iter().map(|(b, _)| b))
            .chain(blob.mem.dirty.iter().map(|(b, _, _)| b))
        {
            if self.device_of_token(b).is_none() {
                return Err(bad_dev(b));
            }
        }
        for idx in 0..self.devices.len() {
            let sub = vgpu::memory::MemDelta {
                freed: blob
                    .mem
                    .freed
                    .iter()
                    .copied()
                    .filter(|&b| self.device_of_token(b) == Some(idx))
                    .collect(),
                new_blocks: blob
                    .mem
                    .new_blocks
                    .iter()
                    .filter(|(b, _)| self.device_of_token(*b) == Some(idx))
                    .cloned()
                    .collect(),
                dirty: blob
                    .mem
                    .dirty
                    .iter()
                    .filter(|(b, _, _)| self.device_of_token(*b) == Some(idx))
                    .cloned()
                    .collect(),
            };
            if sub.is_empty() {
                continue;
            }
            self.devices[idx].lock().mem.apply_delta(&sub)?;
        }
        for &b in &blob.mem.freed {
            staged.resources.mem.remove(&b);
        }
        for (b, _) in &blob.mem.new_blocks {
            staged.resources.mem.insert(*b);
        }

        // Modules: unload ones that vanished, place new ones.
        let new_modules: HashSet<u64> = meta.modules.iter().map(|(h, _)| *h).collect();
        for h in &staged.resources.modules - &new_modules {
            if let Some(idx) = self.device_of_token(h) {
                let _ = self.devices[idx].lock().module_unload(h);
            }
            self.module_images.lock().remove(&h);
        }
        for (h, image) in &meta.modules {
            if !staged.resources.modules.contains(h) {
                let idx = self.device_of_token(*h).ok_or_else(|| bad_dev(*h))?;
                self.devices[idx].lock().restore_module(*h, image)?;
                self.module_images.lock().insert(*h, image.clone());
            }
        }
        staged.resources.modules = new_modules;
        for (h, module, name) in &meta.functions {
            let idx = self.device_of_token(*h).ok_or_else(|| bad_dev(*h))?;
            self.devices[idx]
                .lock()
                .restore_function(*h, *module, name)?;
        }

        // Streams: destroy vanished ones, place the rest at their exact
        // completion frontier (idempotent per blob).
        let new_streams: HashSet<u64> = meta.streams.iter().map(|&(h, _)| h).collect();
        for h in &staged.resources.streams - &new_streams {
            if let Some(idx) = self.device_of_token(h) {
                let _ = self.devices[idx].lock().stream_destroy(h);
            }
        }
        for &(h, frontier) in &meta.streams {
            let idx = self.device_of_token(h).ok_or_else(|| bad_dev(h))?;
            self.devices[idx].lock().restore_stream_at(h, frontier);
        }
        staged.resources.streams = new_streams;

        let new_events: HashSet<u64> = meta.events.iter().map(|&(h, _)| h).collect();
        for h in &staged.resources.events - &new_events {
            if let Some(idx) = self.device_of_token(h) {
                let _ = self.devices[idx].lock().event_destroy(h);
            }
        }
        for &(h, recorded) in &meta.events {
            let idx = self.device_of_token(h).ok_or_else(|| bad_dev(h))?;
            self.devices[idx].lock().restore_event_at(h, recorded);
        }
        staged.resources.events = new_events;

        // Library handles. cuBLAS handles are pure capabilities; a
        // cuSolver context's factorization memo is a timing cache whose
        // hits replay the stored duration, so a fresh context is
        // trace-equivalent; FFT plans are pure values rebuilt through the
        // validating constructor.
        let new_blas: HashSet<u64> = meta.blas.iter().copied().collect();
        {
            let mut blas = self.blas_handles.lock();
            for h in &staged.resources.blas - &new_blas {
                blas.remove(&h);
            }
            for &h in &new_blas {
                blas.insert(h);
            }
        }
        staged.resources.blas = new_blas;
        let new_solvers: HashSet<u64> = meta.solvers.iter().copied().collect();
        {
            let mut solvers = self.solvers.lock();
            for h in &staged.resources.solvers - &new_solvers {
                solvers.remove(&h);
            }
            for &h in &new_solvers {
                solvers.entry(h).or_default();
            }
        }
        staged.resources.solvers = new_solvers;
        let new_ffts: HashSet<u64> = meta.ffts.iter().map(|&(h, ..)| h).collect();
        {
            let mut plans = self.fft_plans.lock();
            for h in &staged.resources.ffts - &new_ffts {
                plans.remove(&h);
            }
            for &(h, n, kind, batch) in &meta.ffts {
                plans.insert(h, vgpu::fft::FftPlan::plan_1d(n, kind, batch)?);
            }
        }
        staged.resources.ffts = new_ffts;

        // Handle counters merge with max() so handles this server already
        // issued to other sessions can never collide with restored ones.
        for &(dev, next) in &meta.next_handles {
            if let Some(d) = self.devices.get(dev as usize) {
                let mut d = d.lock();
                let merged = d.next_handle_value().max(next);
                d.restore_next_handle(merged);
            }
        }
        self.next_lib_handle
            .fetch_max(meta.next_lib_handle, Ordering::SeqCst);

        staged.current_device =
            (meta.current_device as usize).min(self.devices.len().saturating_sub(1));
        staged.default_streams = meta
            .default_streams
            .iter()
            .map(|&(d, h)| (d as usize, h))
            .collect();
        Ok(())
    }

    /// Drop a staged (or half-applied) inbound migration and free
    /// everything it placed on this server — `MIG_ABORT`, and the local
    /// cleanup path when an apply fails midway. Returns whether a staged
    /// migration existed.
    pub fn discard_adoption(&self, token: u64) -> bool {
        let Some(a) = self.adoptions.lock().remove(&token) else {
            return false;
        };
        let res = a.resources;
        for b in res.mem {
            if let Some(idx) = self.device_of_token(b) {
                let _ = self.devices[idx].lock().free(b);
            }
        }
        for h in res.streams {
            if let Some(idx) = self.device_of_token(h) {
                let _ = self.devices[idx].lock().stream_destroy(h);
            }
        }
        for h in res.events {
            if let Some(idx) = self.device_of_token(h) {
                let _ = self.devices[idx].lock().event_destroy(h);
            }
        }
        for h in res.modules {
            if let Some(idx) = self.device_of_token(h) {
                let _ = self.devices[idx].lock().module_unload(h);
            }
            self.module_images.lock().remove(&h);
        }
        for h in res.blas {
            self.blas_handles.lock().remove(&h);
        }
        for h in res.solvers {
            self.solvers.lock().remove(&h);
        }
        for h in res.ffts {
            self.fft_plans.lock().remove(&h);
        }
        true
    }
}

/// Per-session view implementing the generated service trait.
pub struct Sessioned {
    srv: Arc<CricketServer>,
    session: SessionId,
}

impl Sessioned {
    /// Bind `srv` as `session`.
    pub fn new(srv: Arc<CricketServer>, session: SessionId) -> Self {
        Self { srv, session }
    }

    /// The session this view is bound to.
    pub fn session(&self) -> SessionId {
        self.session
    }
}

fn dim(d: RpcDim3) -> Dim3 {
    Dim3 {
        x: d.x,
        y: d.y,
        z: d.z,
    }
}

impl cricket_proto::CricketV1Service for Sessioned {
    fn rpc_null(&self) -> Result<(), oncrpc::AcceptStat> {
        Ok(())
    }
    fn cuda_get_device_count(&self) -> Result<IntResult, oncrpc::AcceptStat> {
        Ok(self.srv.get_device_count(self.session))
    }
    fn cuda_get_device_properties(&self, ordinal: i32) -> Result<PropResult, oncrpc::AcceptStat> {
        Ok(self.srv.get_device_properties(self.session, ordinal))
    }
    fn cuda_set_device(&self, ordinal: i32) -> Result<i32, oncrpc::AcceptStat> {
        Ok(self.srv.set_device(self.session, ordinal))
    }
    fn cuda_get_device(&self) -> Result<IntResult, oncrpc::AcceptStat> {
        Ok(self.srv.get_device(self.session))
    }
    fn cuda_device_synchronize(&self) -> Result<i32, oncrpc::AcceptStat> {
        Ok(self.srv.device_synchronize(self.session))
    }
    fn cuda_device_reset(&self) -> Result<i32, oncrpc::AcceptStat> {
        Ok(self.srv.device_reset(self.session))
    }
    fn cuda_malloc(&self, size: u64) -> Result<U64Result, oncrpc::AcceptStat> {
        Ok(self.srv.malloc(self.session, size))
    }
    fn cuda_free(&self, ptr: u64) -> Result<i32, oncrpc::AcceptStat> {
        Ok(self.srv.free(self.session, ptr))
    }
    fn cuda_memcpy_htod(&self, dst: u64, data: &[u8]) -> Result<i32, oncrpc::AcceptStat> {
        Ok(self.srv.memcpy_htod(self.session, dst, data))
    }
    fn cuda_memcpy_dtoh(&self, src: u64, len: u64) -> Result<DataResult, oncrpc::AcceptStat> {
        Ok(self.srv.memcpy_dtoh(self.session, src, len))
    }
    fn cuda_memcpy_dtod(&self, dst: u64, src: u64, len: u64) -> Result<i32, oncrpc::AcceptStat> {
        Ok(self.srv.memcpy_dtod(self.session, dst, src, len))
    }
    fn cuda_memcpy_htod_stripe(
        &self,
        dst: u64,
        offset: u64,
        seq: u32,
        data: &[u8],
    ) -> Result<i32, oncrpc::AcceptStat> {
        Ok(self
            .srv
            .memcpy_htod_stripe(self.session, dst, offset, seq, data))
    }
    fn cuda_memcpy_dtoh_stripe(
        &self,
        src: u64,
        offset: u64,
        len: u64,
        seq: u32,
    ) -> Result<DataResult, oncrpc::AcceptStat> {
        Ok(self
            .srv
            .memcpy_dtoh_stripe(self.session, src, offset, len, seq))
    }
    fn cuda_memcpy_htod_sparse(&self, dst: u64, enc: &[u8]) -> Result<i32, oncrpc::AcceptStat> {
        Ok(self.srv.memcpy_htod_sparse(self.session, dst, enc))
    }
    fn cuda_memset(&self, ptr: u64, value: i32, len: u64) -> Result<i32, oncrpc::AcceptStat> {
        Ok(self.srv.memset(self.session, ptr, value, len))
    }
    fn cuda_mem_get_info(&self) -> Result<MemInfoResult, oncrpc::AcceptStat> {
        Ok(self.srv.mem_get_info(self.session))
    }
    fn cuda_get_last_error(&self) -> Result<IntResult, oncrpc::AcceptStat> {
        Ok(IntResult::Data(0))
    }
    fn cu_module_load_data(&self, image: &[u8]) -> Result<U64Result, oncrpc::AcceptStat> {
        Ok(self.srv.module_load(self.session, image))
    }
    fn cu_module_get_function(
        &self,
        module: u64,
        name: &str,
    ) -> Result<U64Result, oncrpc::AcceptStat> {
        Ok(self.srv.module_get_function(self.session, module, name))
    }
    fn cu_module_unload(&self, module: u64) -> Result<i32, oncrpc::AcceptStat> {
        Ok(self.srv.module_unload(self.session, module))
    }
    fn cuda_launch_kernel(
        &self,
        func: u64,
        grid: RpcDim3,
        block: RpcDim3,
        shared: u32,
        stream: u64,
        params: &[u8],
    ) -> Result<i32, oncrpc::AcceptStat> {
        Ok(self.srv.launch_kernel(
            self.session,
            func,
            dim(grid),
            dim(block),
            shared,
            stream,
            params,
        ))
    }
    fn cricket_batch_exec(&self, body: &[u8]) -> Result<BatchResult, oncrpc::AcceptStat> {
        self.srv.batch_exec(self.session, body)
    }
    fn cuda_stream_create(&self) -> Result<U64Result, oncrpc::AcceptStat> {
        Ok(self.srv.stream_create(self.session))
    }
    fn cuda_stream_destroy(&self, h: u64) -> Result<i32, oncrpc::AcceptStat> {
        Ok(self.srv.stream_destroy(self.session, h))
    }
    fn cuda_stream_synchronize(&self, h: u64) -> Result<i32, oncrpc::AcceptStat> {
        Ok(self.srv.stream_synchronize(self.session, h))
    }
    fn cuda_event_create(&self) -> Result<U64Result, oncrpc::AcceptStat> {
        Ok(self.srv.event_create(self.session))
    }
    fn cuda_event_record(&self, event: u64, stream: u64) -> Result<i32, oncrpc::AcceptStat> {
        Ok(self.srv.event_record(self.session, event, stream))
    }
    fn cuda_event_synchronize(&self, event: u64) -> Result<i32, oncrpc::AcceptStat> {
        Ok(self.srv.event_synchronize(self.session, event))
    }
    fn cuda_event_elapsed_time(
        &self,
        start: u64,
        stop: u64,
    ) -> Result<FloatResult, oncrpc::AcceptStat> {
        Ok(self.srv.event_elapsed(self.session, start, stop))
    }
    fn cuda_event_destroy(&self, event: u64) -> Result<i32, oncrpc::AcceptStat> {
        Ok(self.srv.event_destroy(self.session, event))
    }
    fn cublas_create(&self) -> Result<U64Result, oncrpc::AcceptStat> {
        Ok(self.srv.blas_create(self.session))
    }
    fn cublas_destroy(&self, h: u64) -> Result<i32, oncrpc::AcceptStat> {
        Ok(self.srv.blas_destroy(self.session, h))
    }
    #[allow(clippy::too_many_arguments)]
    fn cublas_sgemm(
        &self,
        h: u64,
        transa: i32,
        transb: i32,
        m: i32,
        n: i32,
        k: i32,
        alpha: f32,
        a: u64,
        lda: i32,
        b: u64,
        ldb: i32,
        beta: f32,
        c: u64,
        ldc: i32,
    ) -> Result<i32, oncrpc::AcceptStat> {
        Ok(self.srv.gemm(
            self.session,
            h,
            false,
            transa,
            transb,
            m,
            n,
            k,
            alpha as f64,
            a,
            lda,
            b,
            ldb,
            beta as f64,
            c,
            ldc,
        ))
    }
    #[allow(clippy::too_many_arguments)]
    fn cublas_dgemm(
        &self,
        h: u64,
        transa: i32,
        transb: i32,
        m: i32,
        n: i32,
        k: i32,
        alpha: f64,
        a: u64,
        lda: i32,
        b: u64,
        ldb: i32,
        beta: f64,
        c: u64,
        ldc: i32,
    ) -> Result<i32, oncrpc::AcceptStat> {
        Ok(self.srv.gemm(
            self.session,
            h,
            true,
            transa,
            transb,
            m,
            n,
            k,
            alpha,
            a,
            lda,
            b,
            ldb,
            beta,
            c,
            ldc,
        ))
    }
    fn cusolver_dn_create(&self) -> Result<U64Result, oncrpc::AcceptStat> {
        Ok(self.srv.solver_create(self.session))
    }
    fn cusolver_dn_destroy(&self, h: u64) -> Result<i32, oncrpc::AcceptStat> {
        Ok(self.srv.solver_destroy(self.session, h))
    }
    fn cusolver_dn_dgetrf_buffer_size(
        &self,
        h: u64,
        m: i32,
        n: i32,
        _a: u64,
        _lda: i32,
    ) -> Result<IntResult, oncrpc::AcceptStat> {
        Ok(self.srv.getrf_buffer_size(self.session, h, m, n))
    }
    #[allow(clippy::too_many_arguments)]
    fn cusolver_dn_dgetrf(
        &self,
        h: u64,
        m: i32,
        n: i32,
        a: u64,
        lda: i32,
        work: u64,
        ipiv: u64,
        info: u64,
    ) -> Result<i32, oncrpc::AcceptStat> {
        Ok(self
            .srv
            .getrf(self.session, h, m, n, a, lda, work, ipiv, info))
    }
    #[allow(clippy::too_many_arguments)]
    fn cusolver_dn_dgetrs(
        &self,
        h: u64,
        trans: i32,
        n: i32,
        nrhs: i32,
        a: u64,
        lda: i32,
        ipiv: u64,
        b: u64,
        ldb: i32,
        info: u64,
    ) -> Result<i32, oncrpc::AcceptStat> {
        Ok(self
            .srv
            .getrs(self.session, h, trans, n, nrhs, a, lda, ipiv, b, ldb, info))
    }
    fn cufft_plan_1d(
        &self,
        n: i32,
        kind: i32,
        batch: i32,
    ) -> Result<U64Result, oncrpc::AcceptStat> {
        Ok(self.srv.fft_plan_1d(self.session, n, kind, batch))
    }
    fn cufft_destroy(&self, h: u64) -> Result<i32, oncrpc::AcceptStat> {
        Ok(self.srv.fft_destroy(self.session, h))
    }
    fn cufft_exec_c2c(
        &self,
        h: u64,
        idata: u64,
        odata: u64,
        dir: i32,
    ) -> Result<i32, oncrpc::AcceptStat> {
        Ok(self
            .srv
            .fft_exec(self.session, h, vgpu::fft::CUFFT_C2C, idata, odata, dir))
    }
    fn cufft_exec_z2z(
        &self,
        h: u64,
        idata: u64,
        odata: u64,
        dir: i32,
    ) -> Result<i32, oncrpc::AcceptStat> {
        Ok(self
            .srv
            .fft_exec(self.session, h, vgpu::fft::CUFFT_Z2Z, idata, odata, dir))
    }
    fn ckpt_capture(&self) -> Result<DataResult, oncrpc::AcceptStat> {
        Ok(self.srv.ckpt_capture(self.session))
    }
    fn ckpt_restore(&self, blob: &[u8]) -> Result<i32, oncrpc::AcceptStat> {
        Ok(self.srv.ckpt_restore(self.session, blob))
    }
    fn srv_get_stats(&self) -> Result<ServerStats, oncrpc::AcceptStat> {
        Ok(self.srv.srv_stats(self.session))
    }
    fn srv_reset_stats(&self) -> Result<i32, oncrpc::AcceptStat> {
        Ok(self.srv.srv_reset_stats(self.session))
    }
    fn srv_set_scheduler(&self, policy: i32) -> Result<i32, oncrpc::AcceptStat> {
        Ok(self.srv.srv_set_scheduler(self.session, policy))
    }
    // The migration control plane deliberately bypasses `host_call`: no
    // scheduler turn and no virtual-clock charge, so streaming a session in
    // never perturbs the timing the migrated client will observe.
    fn mig_apply_base(&self, blob: &[u8]) -> Result<i32, oncrpc::AcceptStat> {
        Ok(match self.srv.mig_apply(blob, &[MigKind::Base]) {
            Ok(_) => 0,
            Err(e) => CricketServer::err_code(&e),
        })
    }
    fn mig_apply_delta(&self, blob: &[u8]) -> Result<IntResult, oncrpc::AcceptStat> {
        Ok(
            match self.srv.mig_apply(blob, &[MigKind::Delta, MigKind::Final]) {
                Ok(epochs) => IntResult::Data(epochs as i32),
                Err(e) => IntResult::Default(CricketServer::err_code(&e)),
            },
        )
    }
    fn mig_abort(&self, token: u64) -> Result<i32, oncrpc::AcceptStat> {
        self.srv.discard_adoption(token);
        Ok(0)
    }
    fn cricket_qos_set(&self, params: QosParams) -> Result<i32, oncrpc::AcceptStat> {
        Ok(self.srv.qos_set(self.session, &params))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cricket_proto::CricketV1Service as _;

    fn server() -> (Arc<CricketServer>, Sessioned) {
        let srv = CricketServer::a100();
        let sess = Sessioned::new(Arc::clone(&srv), 1);
        (srv, sess)
    }

    #[test]
    fn device_count_and_properties() {
        let (_srv, s) = server();
        assert_eq!(s.cuda_get_device_count().unwrap(), IntResult::Data(4));
        match s.cuda_get_device_properties(0).unwrap() {
            PropResult::Prop(p) => assert!(p.name.contains("A100")),
            other => panic!("{other:?}"),
        }
        assert_eq!(
            s.cuda_get_device_properties(7).unwrap(),
            PropResult::Default(vgpu::CudaCode::InvalidDevice as i32)
        );
        // The paper's GPU node: device 1 is a T4, device 3 a P40.
        match s.cuda_get_device_properties(1).unwrap() {
            PropResult::Prop(p) => assert!(p.name.contains("T4")),
            other => panic!("{other:?}"),
        }
        match s.cuda_get_device_properties(3).unwrap() {
            PropResult::Prop(p) => assert!(p.name.contains("P40")),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.cuda_set_device(0).unwrap(), 0);
        assert_eq!(s.cuda_set_device(2).unwrap(), 0);
        assert_eq!(s.cuda_get_device().unwrap(), IntResult::Data(2));
        assert_ne!(s.cuda_set_device(9).unwrap(), 0);
        s.cuda_set_device(0).unwrap();
    }

    #[test]
    fn allocations_route_to_their_device() {
        let (_srv, s) = server();
        // Allocate on the A100, switch to the T4, allocate again; both
        // pointers stay usable because every pointer carries its device.
        let p0 = s.cuda_malloc(4096).unwrap().into_result().unwrap();
        s.cuda_set_device(1).unwrap();
        let p1 = s.cuda_malloc(4096).unwrap().into_result().unwrap();
        assert_ne!(p0 / HEAP_STRIDE, p1 / HEAP_STRIDE, "distinct heaps");
        s.cuda_memcpy_htod(p0, &[7u8; 16]).unwrap();
        s.cuda_memcpy_htod(p1, &[9u8; 16]).unwrap();
        assert_eq!(
            s.cuda_memcpy_dtoh(p0, 16).unwrap().into_result().unwrap(),
            vec![7u8; 16]
        );
        // Peer copy T4 → A100 through the host staging path.
        assert_eq!(s.cuda_memcpy_dtod(p0, p1, 16).unwrap(), 0);
        assert_eq!(
            s.cuda_memcpy_dtoh(p0, 16).unwrap().into_result().unwrap(),
            vec![9u8; 16]
        );
        assert_eq!(s.cuda_free(p0).unwrap(), 0);
        assert_eq!(s.cuda_free(p1).unwrap(), 0);
    }

    #[test]
    fn malloc_copy_free_cycle() {
        let (_srv, s) = server();
        let ptr = s.cuda_malloc(1024).unwrap().into_result().unwrap();
        assert_eq!(s.cuda_memcpy_htod(ptr, &[7u8; 100]).unwrap(), 0);
        let back = s.cuda_memcpy_dtoh(ptr, 100).unwrap().into_result().unwrap();
        assert_eq!(back, vec![7u8; 100]);
        assert_eq!(s.cuda_free(ptr).unwrap(), 0);
        // Double free is the error the safe wrapper prevents.
        assert_eq!(
            s.cuda_free(ptr).unwrap(),
            vgpu::CudaCode::InvalidValue as i32
        );
    }

    #[test]
    fn oom_reports_cuda_code() {
        let (_srv, s) = server();
        let r = s.cuda_malloc(1 << 60).unwrap();
        assert_eq!(
            r,
            U64Result::Default(vgpu::CudaCode::MemoryAllocation as i32)
        );
    }

    #[test]
    fn clock_advances_with_calls() {
        let (srv, s) = server();
        let t0 = srv.clock().now_ns();
        s.cuda_get_device_count().unwrap();
        let t1 = srv.clock().now_ns();
        assert!(t1 >= t0 + DISPATCH_NS);
    }

    #[test]
    fn stats_accumulate() {
        let (_srv, s) = server();
        let ptr = s.cuda_malloc(4096).unwrap().into_result().unwrap();
        s.cuda_memcpy_htod(ptr, &[0u8; 4096]).unwrap();
        let _ = s.cuda_memcpy_dtoh(ptr, 1024).unwrap();
        let st = s.srv_get_stats().unwrap();
        assert!(st.total_calls >= 3);
        assert_eq!(st.bytes_in, 4096);
        assert_eq!(st.bytes_out, 1024);
        assert_eq!(st.active_sessions, 1);
        s.srv_reset_stats().unwrap();
        let st = s.srv_get_stats().unwrap();
        assert_eq!(st.bytes_in, 0);
    }

    #[test]
    fn gemm_through_service() {
        let (_srv, s) = server();
        let h = s.cublas_create().unwrap().into_result().unwrap();
        let pa = s.cuda_malloc(32).unwrap().into_result().unwrap();
        // A = [2] (1x1), C = A*A.
        let two = 2.0f64.to_le_bytes().to_vec();
        s.cuda_memcpy_htod(pa, &two).unwrap();
        let pc = s.cuda_malloc(8).unwrap().into_result().unwrap();
        assert_eq!(
            s.cublas_dgemm(h, 0, 0, 1, 1, 1, 1.0, pa, 1, pa, 1, 0.0, pc, 1)
                .unwrap(),
            0
        );
        let out = s.cuda_memcpy_dtoh(pc, 8).unwrap().into_result().unwrap();
        assert_eq!(f64::from_le_bytes(out.try_into().unwrap()), 4.0);
        assert_eq!(s.cublas_destroy(h).unwrap(), 0);
        assert_ne!(s.cublas_destroy(h).unwrap(), 0, "stale handle rejected");
    }

    #[test]
    fn solver_requires_valid_handle() {
        let (_srv, s) = server();
        let r = s.cusolver_dn_dgetrf_buffer_size(0xbad, 4, 4, 0, 4).unwrap();
        assert_eq!(r, IntResult::Default(vgpu::CudaCode::InvalidHandle as i32));
    }

    #[test]
    fn release_session_reclaims_everything() {
        let (srv, s) = server();
        let MemInfoResult::Info(before) = s.cuda_mem_get_info().unwrap() else {
            panic!("mem_get_info failed");
        };
        let ptr = s.cuda_malloc(1 << 20).unwrap().into_result().unwrap();
        s.cuda_memcpy_htod(ptr, &[1u8; 64]).unwrap();
        let stream = s.cuda_stream_create().unwrap().into_result().unwrap();
        let event = s.cuda_event_create().unwrap().into_result().unwrap();
        let blas = s.cublas_create().unwrap().into_result().unwrap();
        let MemInfoResult::Info(held) = s.cuda_mem_get_info().unwrap() else {
            panic!("mem_get_info failed");
        };
        assert!(held.free < before.free);

        let cleanup = srv.release_session(1);
        assert_eq!(cleanup.allocations, 1);
        // Two streams: the explicitly created one plus the session's lazily
        // materialized default stream (created by the first async memcpy).
        assert_eq!(cleanup.streams, 2);
        assert_eq!(cleanup.events, 1);
        assert_eq!(cleanup.lib_handles, 1);
        assert_eq!(cleanup.total(), 5);

        // The scheduler forgets the session's ledger too (the leak fix).
        assert!(!srv.scheduler.knows(1));

        // The memory is back and every handle is dead.
        let MemInfoResult::Info(after) = s.cuda_mem_get_info().unwrap() else {
            panic!("mem_get_info failed");
        };
        assert_eq!(after.free, before.free);
        assert_ne!(s.cuda_free(ptr).unwrap(), 0);
        assert_ne!(s.cuda_stream_destroy(stream).unwrap(), 0);
        assert_ne!(s.cuda_event_destroy(event).unwrap(), 0);
        assert_ne!(s.cublas_destroy(blas).unwrap(), 0);

        // Releasing an unknown session is a no-op.
        assert_eq!(srv.release_session(99).total(), 0);
    }

    #[test]
    fn explicitly_destroyed_resources_are_not_double_released() {
        let (srv, s) = server();
        let ptr = s.cuda_malloc(4096).unwrap().into_result().unwrap();
        assert_eq!(s.cuda_free(ptr).unwrap(), 0);
        let cleanup = srv.release_session(1);
        assert_eq!(cleanup.total(), 0, "freed ptr must not be freed again");
    }

    #[test]
    fn host_only_queries_take_no_scheduler_turn() {
        let (srv, s) = server();
        s.cuda_get_device_count().unwrap();
        s.cuda_get_device_properties(0).unwrap();
        s.cuda_get_device().unwrap();
        s.cuda_mem_get_info().unwrap();
        assert!(
            srv.scheduler.served_ops().is_empty(),
            "host-only queries must not be arbitrated as device work"
        );

        // Device work, by contrast, does take a turn.
        let ptr = s.cuda_malloc(256).unwrap().into_result().unwrap();
        s.cuda_free(ptr).unwrap();
        assert_eq!(srv.scheduler.served_ops().get(&1), Some(&2));
    }

    #[test]
    fn scheduler_policy_via_rpc() {
        let (srv, s) = server();
        assert_eq!(s.srv_set_scheduler(2).unwrap(), 0);
        assert_eq!(srv.scheduler.policy(), SchedulerPolicy::Priority);
        assert_ne!(s.srv_set_scheduler(42).unwrap(), 0);
    }
}
