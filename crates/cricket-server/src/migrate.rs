//! Live-migration wire format: the streaming-checkpoint blobs a source
//! server's migration driver pushes to a destination server.
//!
//! A migration is a sequence of [`MigBlob`]s for one client token:
//!
//! 1. one [`MigKind::Base`] — the full session snapshot (every block the
//!    session owns, its modules, streams, events, library handles);
//! 2. any number of [`MigKind::Delta`]s — only what changed since the
//!    previous blob (dirty spans, new/freed blocks), taken while the
//!    source *keeps serving* the client;
//! 3. one [`MigKind::Final`] — the post-barrier delta: the source fences
//!    every stream (the CRAC-style snapshot barrier), evicts the client,
//!    and ships the last dirty window plus the client's at-most-once
//!    replay entries so in-flight xids complete exactly once at the new
//!    home.
//!
//! Every blob carries the full session *metadata* ([`SessionMeta`]) —
//! metadata is tiny next to memory contents, and re-sending it makes each
//! apply idempotent against the previous one (the destination reconciles
//! by diff). Memory rides as a [`MemDelta`] relative to what the previous
//! blob shipped. Encoding is this repository's own XDR; decode errors are
//! typed [`VgpuError`]s, never panics.

use vgpu::memory::MemDelta;
use vgpu::{VgpuError, VgpuResult};
use xdr::{XdrDecoder, XdrEncoder};

/// Migration blob magic ("MIG1").
const MAGIC: u32 = 0x4d49_4731;
/// Migration blob format version.
const VERSION: u32 = 1;

/// Which leg of the migration stream a blob is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigKind {
    /// Full snapshot; opens the stream and replaces any prior attempt.
    Base,
    /// Incremental delta while the source still serves the client.
    Delta,
    /// Post-barrier delta: carries the replay entries and marks the
    /// staged session ready for adoption.
    Final,
}

impl MigKind {
    fn to_u32(self) -> u32 {
        match self {
            MigKind::Base => 0,
            MigKind::Delta => 1,
            MigKind::Final => 2,
        }
    }

    fn from_u32(v: u32) -> Option<Self> {
        match v {
            0 => Some(MigKind::Base),
            1 => Some(MigKind::Delta),
            2 => Some(MigKind::Final),
            _ => None,
        }
    }
}

/// Everything about the session that is not device-memory contents. All
/// vectors are sorted by handle so identical states encode identically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SessionMeta {
    /// The migrating client's at-most-once token (`AUTH_SHORT` credential).
    pub token: u64,
    /// The session's current device ordinal (`cudaSetDevice`).
    pub current_device: u32,
    /// Source virtual clock at export. The destination advances its clock
    /// here so post-cutover timing (event elapsed, batch receipts) is
    /// byte-identical to an unmigrated run.
    pub src_now_ns: u64,
    /// Per-device handle counters `(device ordinal, next_handle)` — merged
    /// with max() on the destination so restored and future handles never
    /// collide.
    pub next_handles: Vec<(u32, u64)>,
    /// Library-handle counter (cuBLAS/cuSolver/cuFFT).
    pub next_lib_handle: u64,
    /// Loaded modules as `(handle, original cubin image)`.
    pub modules: Vec<(u64, Vec<u8>)>,
    /// Resolved functions as `(handle, module handle, kernel name)`.
    pub functions: Vec<(u64, u64, String)>,
    /// Streams as `(handle, completion frontier ns)`.
    pub streams: Vec<(u64, u64)>,
    /// Events as `(handle, recorded-at ns)`; `None` = never recorded.
    pub events: Vec<(u64, Option<u64>)>,
    /// The session's lazily created default streams as
    /// `(device ordinal, stream handle)` — what the client's wire handle
    /// `0` resolves to.
    pub default_streams: Vec<(u32, u64)>,
    /// cuBLAS handles.
    pub blas: Vec<u64>,
    /// cuSolverDn handles.
    pub solvers: Vec<u64>,
    /// cuFFT plans as `(handle, n, kind, batch)`.
    pub ffts: Vec<(u64, i32, i32, i32)>,
}

/// One blob of the migration stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MigBlob {
    /// Which leg this is (defaults to a fresh [`MigKind::Base`]).
    pub kind: Option<MigKind>,
    /// Full session metadata (applied idempotently).
    pub meta: SessionMeta,
    /// Memory changes since the previous blob of this stream.
    pub mem: MemDelta,
    /// The client's replay-cache entries `(xid, cached reply)`; only
    /// populated on [`MigKind::Final`].
    pub replay: Vec<(u32, Vec<u8>)>,
}

impl MigBlob {
    /// A blob of `kind` for `meta`.
    pub fn new(kind: MigKind, meta: SessionMeta) -> Self {
        Self {
            kind: Some(kind),
            meta,
            mem: MemDelta::default(),
            replay: Vec::new(),
        }
    }

    /// The blob's kind (a default-constructed blob is a `Base`).
    pub fn kind(&self) -> MigKind {
        self.kind.unwrap_or(MigKind::Base)
    }

    /// Payload bytes this blob moves (memory contents + module images +
    /// replay replies; framing is negligible next to these).
    pub fn payload_bytes(&self) -> u64 {
        let modules: u64 = self.meta.modules.iter().map(|(_, i)| i.len() as u64).sum();
        let replay: u64 = self.replay.iter().map(|(_, r)| r.len() as u64).sum();
        self.mem.payload_bytes() + modules + replay
    }

    /// Serialize to the wire form carried by `MIG_APPLY_BASE` /
    /// `MIG_APPLY_DELTA`.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = XdrEncoder::with_capacity(4096);
        enc.put_u32(MAGIC);
        enc.put_u32(VERSION);
        enc.put_u32(self.kind().to_u32());

        let m = &self.meta;
        enc.put_u64(m.token);
        enc.put_u32(m.current_device);
        enc.put_u64(m.src_now_ns);
        enc.put_u32(m.next_handles.len() as u32);
        for &(dev, next) in &m.next_handles {
            enc.put_u32(dev);
            enc.put_u64(next);
        }
        enc.put_u64(m.next_lib_handle);
        enc.put_u32(m.modules.len() as u32);
        for (h, image) in &m.modules {
            enc.put_u64(*h);
            enc.put_opaque(image);
        }
        enc.put_u32(m.functions.len() as u32);
        for (h, module, name) in &m.functions {
            enc.put_u64(*h);
            enc.put_u64(*module);
            enc.put_string(name);
        }
        enc.put_u32(m.streams.len() as u32);
        for &(h, frontier) in &m.streams {
            enc.put_u64(h);
            enc.put_u64(frontier);
        }
        enc.put_u32(m.events.len() as u32);
        for &(h, recorded) in &m.events {
            enc.put_u64(h);
            match recorded {
                Some(t) => {
                    enc.put_u32(1);
                    enc.put_u64(t);
                }
                None => enc.put_u32(0),
            }
        }
        enc.put_u32(m.default_streams.len() as u32);
        for &(dev, h) in &m.default_streams {
            enc.put_u32(dev);
            enc.put_u64(h);
        }
        enc.put_u32(m.blas.len() as u32);
        for &h in &m.blas {
            enc.put_u64(h);
        }
        enc.put_u32(m.solvers.len() as u32);
        for &h in &m.solvers {
            enc.put_u64(h);
        }
        enc.put_u32(m.ffts.len() as u32);
        for &(h, n, kind, batch) in &m.ffts {
            enc.put_u64(h);
            enc.put_i32(n);
            enc.put_i32(kind);
            enc.put_i32(batch);
        }

        enc.put_u32(self.mem.freed.len() as u32);
        for &base in &self.mem.freed {
            enc.put_u64(base);
        }
        enc.put_u32(self.mem.new_blocks.len() as u32);
        for (base, bytes) in &self.mem.new_blocks {
            enc.put_u64(*base);
            enc.put_opaque(bytes);
        }
        enc.put_u32(self.mem.dirty.len() as u32);
        for (base, off, bytes) in &self.mem.dirty {
            enc.put_u64(*base);
            enc.put_u64(*off);
            enc.put_opaque(bytes);
        }

        enc.put_u32(self.replay.len() as u32);
        for (xid, reply) in &self.replay {
            enc.put_u32(*xid);
            enc.put_opaque(reply);
        }
        enc.into_inner()
    }

    /// Parse a wire blob. Garbage and truncation yield typed errors.
    pub fn decode(blob: &[u8]) -> VgpuResult<Self> {
        let bad = |m: &str| VgpuError::InvalidValue(format!("migration blob: {m}"));
        let mut dec = XdrDecoder::new(blob);
        macro_rules! get {
            ($e:expr) => {
                $e.map_err(|e| bad(&e.to_string()))?
            };
        }
        if get!(dec.get_u32()) != MAGIC {
            return Err(bad("wrong magic"));
        }
        let version = get!(dec.get_u32());
        if version != VERSION {
            return Err(bad(&format!("unsupported version {version}")));
        }
        let kind_raw = get!(dec.get_u32());
        let kind = MigKind::from_u32(kind_raw).ok_or_else(|| bad(&format!("kind {kind_raw}")))?;

        let mut meta = SessionMeta {
            token: get!(dec.get_u64()),
            current_device: get!(dec.get_u32()),
            src_now_ns: get!(dec.get_u64()),
            ..SessionMeta::default()
        };
        // Bound element counts by the remaining bytes so a corrupted count
        // cannot drive a huge pre-allocation.
        let cap = |n: u32| (n as usize).min(blob.len());
        let n = get!(dec.get_u32());
        meta.next_handles.reserve(cap(n));
        for _ in 0..n {
            meta.next_handles
                .push((get!(dec.get_u32()), get!(dec.get_u64())));
        }
        meta.next_lib_handle = get!(dec.get_u64());
        let n = get!(dec.get_u32());
        meta.modules.reserve(cap(n));
        for _ in 0..n {
            meta.modules
                .push((get!(dec.get_u64()), get!(dec.get_opaque()).to_vec()));
        }
        let n = get!(dec.get_u32());
        meta.functions.reserve(cap(n));
        for _ in 0..n {
            meta.functions.push((
                get!(dec.get_u64()),
                get!(dec.get_u64()),
                get!(dec.get_string()),
            ));
        }
        let n = get!(dec.get_u32());
        meta.streams.reserve(cap(n));
        for _ in 0..n {
            meta.streams
                .push((get!(dec.get_u64()), get!(dec.get_u64())));
        }
        let n = get!(dec.get_u32());
        meta.events.reserve(cap(n));
        for _ in 0..n {
            let h = get!(dec.get_u64());
            let recorded = match get!(dec.get_u32()) {
                0 => None,
                1 => Some(get!(dec.get_u64())),
                other => return Err(bad(&format!("event discriminant {other}"))),
            };
            meta.events.push((h, recorded));
        }
        let n = get!(dec.get_u32());
        meta.default_streams.reserve(cap(n));
        for _ in 0..n {
            meta.default_streams
                .push((get!(dec.get_u32()), get!(dec.get_u64())));
        }
        let n = get!(dec.get_u32());
        meta.blas.reserve(cap(n));
        for _ in 0..n {
            meta.blas.push(get!(dec.get_u64()));
        }
        let n = get!(dec.get_u32());
        meta.solvers.reserve(cap(n));
        for _ in 0..n {
            meta.solvers.push(get!(dec.get_u64()));
        }
        let n = get!(dec.get_u32());
        meta.ffts.reserve(cap(n));
        for _ in 0..n {
            meta.ffts.push((
                get!(dec.get_u64()),
                get!(dec.get_i32()),
                get!(dec.get_i32()),
                get!(dec.get_i32()),
            ));
        }

        let mut mem = MemDelta::default();
        let n = get!(dec.get_u32());
        mem.freed.reserve(cap(n));
        for _ in 0..n {
            mem.freed.push(get!(dec.get_u64()));
        }
        let n = get!(dec.get_u32());
        mem.new_blocks.reserve(cap(n));
        for _ in 0..n {
            mem.new_blocks
                .push((get!(dec.get_u64()), get!(dec.get_opaque()).to_vec()));
        }
        let n = get!(dec.get_u32());
        mem.dirty.reserve(cap(n));
        for _ in 0..n {
            mem.dirty.push((
                get!(dec.get_u64()),
                get!(dec.get_u64()),
                get!(dec.get_opaque()).to_vec(),
            ));
        }

        let mut replay = Vec::new();
        let n = get!(dec.get_u32());
        replay.reserve(cap(n));
        for _ in 0..n {
            replay.push((get!(dec.get_u32()), get!(dec.get_opaque()).to_vec()));
        }
        get!(dec.finish());
        Ok(Self {
            kind: Some(kind),
            meta,
            mem,
            replay,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated() -> MigBlob {
        let meta = SessionMeta {
            token: 0xFEED_0001,
            current_device: 2,
            src_now_ns: 123_456_789,
            next_handles: vec![(0, 0x42), (2, 0x2000_0099)],
            next_lib_handle: 0x8000_0000_0003,
            modules: vec![(0x11, b"cubin image".to_vec())],
            functions: vec![(0x12, 0x11, "saxpy".into())],
            streams: vec![(0x13, 9_000), (0x14, 0)],
            events: vec![(0x15, Some(4_200)), (0x16, None)],
            default_streams: vec![(0, 0x13)],
            blas: vec![0x8000_0000_0000],
            solvers: vec![0x8000_0000_0001],
            ffts: vec![(0x8000_0000_0002, 1024, vgpu::fft::CUFFT_C2C, 4)],
        };
        let mut blob = MigBlob::new(MigKind::Final, meta);
        blob.mem = MemDelta {
            freed: vec![0x1000_0000],
            new_blocks: vec![(0x1000_1000, vec![7u8; 64])],
            dirty: vec![(0x1000_2000, 16, vec![9u8; 8])],
        };
        blob.replay = vec![(77, vec![1, 2, 3]), (78, vec![])];
        blob
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let blob = populated();
        let decoded = MigBlob::decode(&blob.encode()).unwrap();
        assert_eq!(decoded, blob);
        assert_eq!(decoded.kind(), MigKind::Final);
    }

    #[test]
    fn empty_base_roundtrips() {
        let blob = MigBlob::new(
            MigKind::Base,
            SessionMeta {
                token: 1,
                ..SessionMeta::default()
            },
        );
        let decoded = MigBlob::decode(&blob.encode()).unwrap();
        assert_eq!(decoded, blob);
        assert_eq!(decoded.payload_bytes(), 0);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(MigBlob::decode(b"definitely not a migration blob").is_err());
        let mut bad_magic = populated().encode();
        bad_magic[0] ^= 0xff;
        assert!(MigBlob::decode(&bad_magic).is_err());
        // Unknown kind discriminant.
        let mut bad_kind = populated().encode();
        bad_kind[11] = 9;
        assert!(MigBlob::decode(&bad_kind).is_err());
    }

    #[test]
    fn decode_rejects_truncation_at_every_cut() {
        let full = populated().encode();
        for cut in [0, 4, 8, 12, full.len() / 3, full.len() / 2, full.len() - 1] {
            assert!(MigBlob::decode(&full[..cut]).is_err(), "cut {cut}");
        }
        // Trailing junk is rejected too (finish() catches it).
        let mut long = full.clone();
        long.extend_from_slice(&[0, 0, 0, 0]);
        assert!(MigBlob::decode(&long).is_err());
    }

    #[test]
    fn payload_bytes_counts_contents_not_framing() {
        let blob = populated();
        // 64 new + 8 dirty + 11 module image + 3 replay.
        assert_eq!(blob.payload_bytes(), 64 + 8 + 11 + 3);
    }
}
