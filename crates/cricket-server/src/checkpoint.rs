//! Checkpoint / restart.
//!
//! Cricket's flagship feature besides remote execution (paper §1, §3.3):
//! the server can serialize the complete GPU-side state of its clients and
//! later restore it — on the same or a different server — without the
//! client noticing, because all handles are restored at their original
//! values. The snapshot is encoded with this repository's own XDR
//! implementation (no external serialization dependency).

use simnet::SimClock;
use std::collections::HashMap;
use std::sync::Arc;
use vgpu::{Device, DeviceProperties, VgpuError, VgpuResult};
use xdr::{XdrDecoder, XdrEncoder};

/// Snapshot magic ("CKPT").
const MAGIC: u32 = 0x434b_5054;
/// Snapshot format version.
const VERSION: u32 = 1;

/// Serialize the device state (memory blocks, modules, functions, streams,
/// events, handle counter) into an XDR blob.
///
/// Fails with [`VgpuError::CheckpointRace`] (instead of panicking) if a
/// block enumerated for capture is freed before its bytes are read.
pub fn capture(device: &Device, module_images: &HashMap<u64, Vec<u8>>) -> VgpuResult<Vec<u8>> {
    let blocks: Vec<(u64, u64)> = device.mem.live_allocations().collect();
    capture_blocks(device, &blocks, module_images)
}

/// Capture against an explicit block list. Factored out of [`capture`] so
/// the freed-during-snapshot race is testable: a block listed here that is
/// no longer live yields a typed error, never a panic.
fn capture_blocks(
    device: &Device,
    blocks: &[(u64, u64)],
    module_images: &HashMap<u64, Vec<u8>>,
) -> VgpuResult<Vec<u8>> {
    let mut enc = XdrEncoder::with_capacity(4096);
    enc.put_u32(MAGIC);
    enc.put_u32(VERSION);
    enc.put_u64(device.next_handle_value());

    enc.put_u32(blocks.len() as u32);
    for (base, _size) in blocks {
        enc.put_u64(*base);
        let bytes = device
            .mem
            .block_bytes(*base)
            .map_err(|_| VgpuError::CheckpointRace { base: *base })?;
        enc.put_opaque(bytes);
    }

    // Prefer the original images (exact client bytes); fall back to the
    // device's reserialization for modules loaded before tracking existed.
    let modules = device.snapshot_modules();
    enc.put_u32(modules.len() as u32);
    for (handle, reserialized) in &modules {
        enc.put_u64(*handle);
        match module_images.get(handle) {
            Some(orig) => enc.put_opaque(orig),
            None => enc.put_opaque(reserialized),
        }
    }

    let functions = device.snapshot_functions();
    enc.put_u32(functions.len() as u32);
    for (handle, module, name) in &functions {
        enc.put_u64(*handle);
        enc.put_u64(*module);
        enc.put_string(name);
    }

    let streams = device.snapshot_streams();
    enc.put_u32(streams.len() as u32);
    for s in &streams {
        enc.put_u64(*s);
    }

    let events = device.snapshot_events();
    enc.put_u32(events.len() as u32);
    for e in &events {
        enc.put_u64(*e);
    }

    Ok(enc.into_inner())
}

/// Rebuild `device` from a snapshot, returning the module-image table the
/// server must retain for future checkpoints.
pub fn restore(
    device: &mut Device,
    blob: &[u8],
    props: &DeviceProperties,
    clock: &Arc<SimClock>,
) -> VgpuResult<HashMap<u64, Vec<u8>>> {
    let mut dec = XdrDecoder::new(blob);
    let bad = |m: &str| VgpuError::InvalidValue(format!("snapshot: {m}"));
    let magic = dec.get_u32().map_err(|e| bad(&e.to_string()))?;
    if magic != MAGIC {
        return Err(bad("wrong magic"));
    }
    let version = dec.get_u32().map_err(|e| bad(&e.to_string()))?;
    if version != VERSION {
        return Err(bad(&format!("unsupported version {version}")));
    }

    let mut fresh = Device::new(props.clone(), Arc::clone(clock));
    let next_handle = dec.get_u64().map_err(|e| bad(&e.to_string()))?;

    let n_blocks = dec.get_u32().map_err(|e| bad(&e.to_string()))?;
    for _ in 0..n_blocks {
        let base = dec.get_u64().map_err(|e| bad(&e.to_string()))?;
        let bytes = dec.get_opaque().map_err(|e| bad(&e.to_string()))?;
        fresh.mem.restore_block(base, bytes)?;
    }

    let mut images = HashMap::new();
    let n_modules = dec.get_u32().map_err(|e| bad(&e.to_string()))?;
    for _ in 0..n_modules {
        let handle = dec.get_u64().map_err(|e| bad(&e.to_string()))?;
        let image = dec.get_opaque().map_err(|e| bad(&e.to_string()))?.to_vec();
        fresh.restore_module(handle, &image)?;
        images.insert(handle, image);
    }

    let n_functions = dec.get_u32().map_err(|e| bad(&e.to_string()))?;
    for _ in 0..n_functions {
        let handle = dec.get_u64().map_err(|e| bad(&e.to_string()))?;
        let module = dec.get_u64().map_err(|e| bad(&e.to_string()))?;
        let name = dec.get_string().map_err(|e| bad(&e.to_string()))?;
        fresh.restore_function(handle, module, &name)?;
    }

    let n_streams = dec.get_u32().map_err(|e| bad(&e.to_string()))?;
    for _ in 0..n_streams {
        fresh.restore_stream(dec.get_u64().map_err(|e| bad(&e.to_string()))?);
    }
    let n_events = dec.get_u32().map_err(|e| bad(&e.to_string()))?;
    for _ in 0..n_events {
        fresh.restore_event(dec.get_u64().map_err(|e| bad(&e.to_string()))?);
    }
    dec.finish().map_err(|e| bad(&e.to_string()))?;

    fresh.restore_next_handle(next_handle);
    *device = fresh;
    Ok(images)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgpu::module::CubinBuilder;
    use vgpu::Dim3;

    fn populated_device() -> (Device, HashMap<u64, Vec<u8>>, u64, u64, u64) {
        let mut d = Device::a100();
        let image = CubinBuilder::new()
            .kernel("saxpy", &[8, 8, 4, 4])
            .code(b"code")
            .build(true);
        let (module, _) = d.module_load(&image).unwrap();
        let (func, _) = d.module_get_function(module, "saxpy").unwrap();
        let (ptr, _) = d.malloc(1024).unwrap();
        d.memcpy_htod(ptr, b"precious gpu state").unwrap();
        let (stream, _) = d.stream_create();
        let (_event, _) = d.event_create();
        let mut images = HashMap::new();
        images.insert(module, image);
        (d, images, ptr, func, stream)
    }

    #[test]
    fn capture_restore_roundtrip() {
        let (d, images, ptr, func, stream) = populated_device();
        let blob = capture(&d, &images).unwrap();

        let clock = SimClock::new();
        let mut fresh = Device::new(DeviceProperties::a100(), Arc::clone(&clock));
        let restored_images =
            restore(&mut fresh, &blob, &DeviceProperties::a100(), &clock).unwrap();
        assert_eq!(restored_images.len(), 1);

        // Memory contents survive at the same addresses.
        let (bytes, _) = fresh.memcpy_dtoh(ptr, 18).unwrap();
        assert_eq!(bytes, b"precious gpu state");

        // The function handle still launches.
        let params = vgpu::kernels::ParamBuilder::new()
            .ptr(ptr)
            .ptr(ptr)
            .f32(0.0)
            .u32(4)
            .build();
        fresh
            .launch_kernel(func, Dim3::one(), Dim3::linear(32), 0, stream, &params)
            .unwrap();

        // New handles do not collide with restored ones.
        let (new_stream, _) = fresh.stream_create();
        assert!(new_stream > stream);
    }

    #[test]
    fn capture_of_freed_block_is_typed_error_not_panic() {
        // Simulate a free racing the snapshot: the block list was taken
        // while `ptr` was live, but the block is gone by the time its bytes
        // are read. capture() must surface CheckpointRace, not panic.
        let (mut d, images, ptr, ..) = populated_device();
        let stale: Vec<(u64, u64)> = d.mem.live_allocations().collect();
        d.free(ptr).unwrap();
        let err = capture_blocks(&d, &stale, &images).unwrap_err();
        assert_eq!(err, VgpuError::CheckpointRace { base: ptr });
        // The non-racy path still succeeds afterwards.
        capture(&d, &images).unwrap();
    }

    #[test]
    fn restore_rejects_garbage() {
        let clock = SimClock::new();
        let mut d = Device::new(DeviceProperties::a100(), Arc::clone(&clock));
        assert!(restore(&mut d, b"not a snapshot", &DeviceProperties::a100(), &clock).is_err());
        let mut bad_magic = capture(&d, &HashMap::new()).unwrap();
        bad_magic[0] ^= 0xff;
        assert!(restore(&mut d, &bad_magic, &DeviceProperties::a100(), &clock).is_err());
    }

    #[test]
    fn restore_rejects_truncation() {
        let (d, images, ..) = populated_device();
        let blob = capture(&d, &images).unwrap();
        let clock = SimClock::new();
        for cut in [4usize, 12, blob.len() / 2, blob.len() - 2] {
            let mut fresh = Device::new(DeviceProperties::a100(), Arc::clone(&clock));
            assert!(
                restore(&mut fresh, &blob[..cut], &DeviceProperties::a100(), &clock).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn empty_device_snapshot_roundtrips() {
        let d = Device::a100();
        let blob = capture(&d, &HashMap::new()).unwrap();
        let clock = SimClock::new();
        let mut fresh = Device::new(DeviceProperties::a100(), Arc::clone(&clock));
        let images = restore(&mut fresh, &blob, &DeviceProperties::a100(), &clock).unwrap();
        assert!(images.is_empty());
        assert_eq!(fresh.mem_info().0, fresh.mem_info().1);
    }
}
