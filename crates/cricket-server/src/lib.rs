//! The Cricket server.
//!
//! "The Cricket server executes the CUDA APIs and forwards the results back
//! to the application" (paper §3.3). This crate implements that server for
//! the simulated GPU:
//!
//! * [`service`] — the generated [`cricket_proto::CricketV1Service`] trait
//!   implemented over [`vgpu::Device`], with per-API host-side cost
//!   accounting charged to the shared virtual clock;
//! * [`scheduler`] — configurable GPU-sharing policies (FIFO, round-robin,
//!   priority) arbitrating concurrent client sessions, the paper's
//!   "managing the shared access through configurable schedulers";
//! * [`checkpoint`] — serialization of the entire GPU-side state (memory,
//!   modules, functions, streams, events) into an XDR blob and exact-handle
//!   restore, the paper's Checkpoint/Restart support;
//! * [`transport`] — the simulated client↔server paths: an in-process
//!   transport that carries real RPC bytes through the functional guest TCP
//!   stack and charges network time from the environment's cost model.
//!
//! The `cricket-server` binary serves the protocol over real TCP.

pub mod checkpoint;
pub mod scheduler;
pub mod service;
pub mod transport;

pub use scheduler::{SchedulerPolicy, SessionId};
pub use service::{CricketServer, ServerConfig, SessionCleanup};
pub use transport::SimTransport;

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Register a [`CricketServer`] on an [`oncrpc::RpcServer`] and return both.
pub fn make_rpc_server(server: Arc<CricketServer>) -> Arc<oncrpc::RpcServer> {
    let rpc = Arc::new(oncrpc::RpcServer::new());
    rpc.register(
        cricket_proto::CRICKET_CUDA,
        cricket_proto::CRICKET_V1,
        Arc::new(cricket_proto::CricketV1Dispatch(service::Sessioned::new(
            server, 0,
        ))),
    );
    rpc
}

/// How [`serve_tcp_sessions_mode`] maps connections onto OS threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// One thread per connection, classic serial request/reply loop.
    Serial,
    /// One thread per connection plus a per-connection reply-writer thread
    /// ([`oncrpc::RpcServer::serve_pipelined`]). The historical default.
    Pipelined,
    /// A fixed pool of `max_conns` serving threads, each owning one
    /// connection at a time (libtirpc-style); connections beyond the pool
    /// wait unserved until a slot frees. This is the honest
    /// thread-per-connection baseline at a fixed thread budget for the
    /// connscale bench.
    PipelinedBounded {
        /// Serving threads — also the max concurrently served connections.
        max_conns: usize,
    },
    /// The completion-driven reactor ([`oncrpc::serve_tcp_reactor`]):
    /// every connection multiplexed over one poller thread, `workers`
    /// execution shards, and one completion writer.
    Reactor {
        /// Worker shards executing `Parked` procedures.
        workers: usize,
    },
}

/// Classify a Cricket procedure for the reactor's inline fast path.
///
/// `Done` procedures answer from host-visible server state without taking
/// a scheduler turn, a device lock for simulated time, or any condvar wait
/// (the `host_call` paths in [`service`]); they are safe to execute inline
/// on the reactor thread. Everything else — anything routed through
/// `enqueue_at` / `sync_enqueue_at` / `wait_*`, i.e. anything that can
/// block on a scheduler turn — must park on a worker shard.
pub fn proc_class(proc: u32) -> oncrpc::ProcClass {
    use cricket_proto::cricket_v1 as p;
    match proc {
        p::RPC_NULL
        | p::CUDA_GET_DEVICE_COUNT
        | p::CUDA_GET_DEVICE_PROPERTIES
        | p::CUDA_SET_DEVICE
        | p::CUDA_GET_DEVICE
        | p::CUDA_MEM_GET_INFO
        | p::CUDA_GET_LAST_ERROR
        | p::CUSOLVER_DN_DGETRF_BUFFER_SIZE
        | p::SRV_GET_STATS
        | p::SRV_RESET_STATS
        | p::SRV_SET_SCHEDULER => oncrpc::ProcClass::Done,
        _ => oncrpc::ProcClass::Parked,
    }
}

/// The [`proc_class`] table as a reactor [`oncrpc::Classifier`]: calls to
/// foreign programs/versions are parked so the full dispatcher produces
/// the proper error reply off the reactor thread.
pub fn cricket_classifier() -> oncrpc::Classifier {
    Arc::new(|prog, vers, proc| {
        if prog == cricket_proto::CRICKET_CUDA && vers == cricket_proto::CRICKET_V1 {
            proc_class(proc)
        } else {
            oncrpc::ProcClass::Parked
        }
    })
}

/// Serve `server` over TCP with hardened per-connection sessions:
///
/// * every accepted connection becomes its own [`SessionId`], so the
///   scheduler arbitrates clients individually;
/// * all connections share one at-most-once [`oncrpc::ReplayCache`] — a
///   client that retransmits a non-idempotent call (same client token, same
///   xid), even over a fresh connection after a reset, gets the original
///   reply instead of a second execution;
/// * when a connection ends — clean close or mid-call reset — the session's
///   vGPU resources (memory, streams, events, modules, library handles) are
///   reclaimed via [`CricketServer::release_session`];
/// * each connection is served through the *pipelined* reply path
///   ([`oncrpc::RpcServer::serve_pipelined`]): requests are read and
///   dispatched in order while a writer thread drains replies, so a client
///   streaming asynchronous calls (kernel launches that only enqueue device
///   work) is not serialized on reply round trips. If the socket cannot be
///   duplicated the connection falls back to the classic serial loop.
///
/// Returns the listener handle plus the shared replay cache (its
/// [`oncrpc::ReplayCache::stats`] telemetry counts replay hits).
pub fn serve_tcp_sessions<A: std::net::ToSocketAddrs>(
    server: Arc<CricketServer>,
    addr: A,
) -> oncrpc::RpcResult<(oncrpc::server::ServerHandle, Arc<oncrpc::ReplayCache>)> {
    serve_tcp_sessions_mode(server, addr, ServeMode::Pipelined)
}

/// Build one connection's `RpcServer`: its own session view over the shared
/// [`CricketServer`], sharing the at-most-once replay cache.
fn session_rpc(
    server: &Arc<CricketServer>,
    replay: &Arc<oncrpc::ReplayCache>,
    session: SessionId,
) -> oncrpc::RpcServer {
    let rpc = oncrpc::RpcServer::new();
    rpc.set_replay_cache(Arc::clone(replay));
    rpc.register(
        cricket_proto::CRICKET_CUDA,
        cricket_proto::CRICKET_V1,
        Arc::new(cricket_proto::CricketV1Dispatch(service::Sessioned::new(
            Arc::clone(server),
            session,
        ))),
    );
    rpc
}

/// [`serve_tcp_sessions`] with an explicit [`ServeMode`]. All modes share
/// the same session semantics — one [`SessionId`] per accepted connection,
/// one shared replay cache, [`CricketServer::release_session`] exactly once
/// when the connection ends — and differ only in how connections are
/// multiplexed onto threads.
pub fn serve_tcp_sessions_mode<A: std::net::ToSocketAddrs>(
    server: Arc<CricketServer>,
    addr: A,
    mode: ServeMode,
) -> oncrpc::RpcResult<(oncrpc::server::ServerHandle, Arc<oncrpc::ReplayCache>)> {
    let replay = Arc::new(oncrpc::ReplayCache::default());
    let shared = Arc::clone(&replay);
    let handle = match mode {
        ServeMode::Reactor { workers } => {
            let cfg = oncrpc::ReactorConfig {
                workers: workers.max(1),
                classify: Some(cricket_classifier()),
                ..oncrpc::ReactorConfig::default()
            };
            let next_session = AtomicU32::new(1);
            oncrpc::serve_tcp_reactor(addr, cfg, move |_conn| {
                let session = next_session.fetch_add(1, Ordering::Relaxed);
                let rpc = Arc::new(session_rpc(&server, &shared, session));
                let server = Arc::clone(&server);
                oncrpc::ConnHandler {
                    rpc,
                    // Runs after the session's last in-flight call completed
                    // and its last reply hit the completion ring. Replay
                    // entries are deliberately kept — a reconnecting client
                    // may still retransmit calls from the dead connection.
                    on_close: Some(Box::new(move || {
                        server.release_session(session);
                    })),
                }
            })?
        }
        ServeMode::PipelinedBounded { max_conns } => {
            // Fixed serving pool: accepted connections queue; `max_conns`
            // threads each serve one connection to completion at a time.
            let (conn_tx, conn_rx) = crossbeam_channel::unbounded::<oncrpc::TcpTransport>();
            let conn_rx = Arc::new(std::sync::Mutex::new(conn_rx));
            let next_session = Arc::new(AtomicU32::new(1));
            for _ in 0..max_conns.max(1) {
                let conn_rx = Arc::clone(&conn_rx);
                let server = Arc::clone(&server);
                let shared = Arc::clone(&shared);
                let next_session = Arc::clone(&next_session);
                std::thread::spawn(move || loop {
                    let queued = {
                        let rx = conn_rx.lock().unwrap_or_else(|e| e.into_inner());
                        rx.recv()
                    };
                    let Ok(mut conn) = queued else { break };
                    let session = next_session.fetch_add(1, Ordering::Relaxed);
                    let rpc = session_rpc(&server, &shared, session);
                    match conn.try_clone() {
                        Ok(writer) => {
                            let _ = rpc.serve_pipelined(&mut conn, writer);
                        }
                        Err(_) => {
                            let _ = rpc.serve_connection(&mut conn);
                        }
                    }
                    server.release_session(session);
                });
            }
            oncrpc::server::serve_tcp_with(addr, move |conn| {
                let _ = conn_tx.send(conn);
            })?
        }
        ServeMode::Serial | ServeMode::Pipelined => {
            let next_session = AtomicU32::new(1);
            oncrpc::server::serve_tcp_with(addr, move |mut conn| {
                let session = next_session.fetch_add(1, Ordering::Relaxed);
                let rpc = session_rpc(&server, &shared, session);
                let writer = match mode {
                    ServeMode::Pipelined => conn.try_clone().ok(),
                    _ => None,
                };
                match writer {
                    Some(writer) => {
                        let _ = rpc.serve_pipelined(&mut conn, writer);
                    }
                    None => {
                        let _ = rpc.serve_connection(&mut conn);
                    }
                }
                // The client is gone (or reset): reclaim everything it
                // still holds. Replay-cache entries are deliberately kept —
                // a reconnecting client may still retransmit calls it sent
                // on the dead connection.
                server.release_session(session);
            })?
        }
    };
    Ok((handle, replay))
}
