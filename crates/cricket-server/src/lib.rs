//! The Cricket server.
//!
//! "The Cricket server executes the CUDA APIs and forwards the results back
//! to the application" (paper §3.3). This crate implements that server for
//! the simulated GPU:
//!
//! * [`service`] — the generated [`cricket_proto::CricketV1Service`] trait
//!   implemented over [`vgpu::Device`], with per-API host-side cost
//!   accounting charged to the shared virtual clock;
//! * [`scheduler`] — configurable GPU-sharing policies (FIFO, round-robin,
//!   priority) arbitrating concurrent client sessions, the paper's
//!   "managing the shared access through configurable schedulers";
//! * [`checkpoint`] — serialization of the entire GPU-side state (memory,
//!   modules, functions, streams, events) into an XDR blob and exact-handle
//!   restore, the paper's Checkpoint/Restart support;
//! * [`transport`] — the simulated client↔server paths: an in-process
//!   transport that carries real RPC bytes through the functional guest TCP
//!   stack and charges network time from the environment's cost model.
//!
//! The `cricket-server` binary serves the protocol over real TCP.

pub mod checkpoint;
pub mod scheduler;
pub mod service;
pub mod transport;

pub use scheduler::{SchedulerPolicy, SessionId};
pub use service::{CricketServer, ServerConfig};
pub use transport::SimTransport;

use std::sync::Arc;

/// Register a [`CricketServer`] on an [`oncrpc::RpcServer`] and return both.
pub fn make_rpc_server(server: Arc<CricketServer>) -> Arc<oncrpc::RpcServer> {
    let rpc = Arc::new(oncrpc::RpcServer::new());
    rpc.register(
        cricket_proto::CRICKET_CUDA,
        cricket_proto::CRICKET_V1,
        Arc::new(cricket_proto::CricketV1Dispatch(service::Sessioned::new(
            server, 0,
        ))),
    );
    rpc
}
