//! The Cricket server.
//!
//! "The Cricket server executes the CUDA APIs and forwards the results back
//! to the application" (paper §3.3). This crate implements that server for
//! the simulated GPU:
//!
//! * [`service`] — the generated [`cricket_proto::CricketV1Service`] trait
//!   implemented over [`vgpu::Device`], with per-API host-side cost
//!   accounting charged to the shared virtual clock;
//! * [`scheduler`] — configurable GPU-sharing policies (FIFO, round-robin,
//!   priority) arbitrating concurrent client sessions, the paper's
//!   "managing the shared access through configurable schedulers";
//! * [`checkpoint`] — serialization of the entire GPU-side state (memory,
//!   modules, functions, streams, events) into an XDR blob and exact-handle
//!   restore, the paper's Checkpoint/Restart support;
//! * [`transport`] — the simulated client↔server paths: an in-process
//!   transport that carries real RPC bytes through the functional guest TCP
//!   stack and charges network time from the environment's cost model.
//!
//! The `cricket-server` binary serves the protocol over real TCP.

pub mod builder;
pub mod checkpoint;
pub mod migrate;
pub mod scheduler;
pub mod service;
pub mod transport;

pub use builder::{DirectoryRegistration, ServeHandle, ServerBuilder};
pub use migrate::{MigBlob, MigKind, SessionMeta};
pub use oncrpc::ReactorConfig;
pub use scheduler::{QosSpec, SchedulerPolicy, SessionId};
pub use service::{CricketServer, QosServerConfig, ServerConfig, SessionCleanup};
pub use transport::SimTransport;

use std::sync::Arc;

/// QoS admission gate in front of the generated dispatch: every call for
/// one session passes [`CricketServer::qos_admit`] before its procedure
/// body runs. A shed call returns [`oncrpc::AcceptStat::Busy`] with a
/// retry-after hint and is never executed (and never replay-cached).
struct QosGate {
    inner: cricket_proto::CricketV1Dispatch<service::Sessioned>,
    server: Arc<CricketServer>,
    session: SessionId,
}

impl oncrpc::server::Dispatch for QosGate {
    fn dispatch(
        &self,
        proc: u32,
        args: &mut xdr::XdrDecoder<'_>,
        reply: &mut xdr::XdrEncoder,
    ) -> oncrpc::server::DispatchResult {
        // Peek the CUDA_MALLOC size (without consuming the argument stream)
        // so the resident-bytes quota can refuse before allocating.
        let malloc_size = if proc == cricket_proto::cricket_v1::CUDA_MALLOC {
            args.clone().get_u64().ok()
        } else {
            None
        };
        if let Err(hint) = self.server.qos_admit(self.session, proc, malloc_size) {
            oncrpc::server::set_busy_retry_after_ns(hint);
            return Err(oncrpc::AcceptStat::Busy);
        }
        self.inner.dispatch(proc, args, reply)
    }
}

/// Register a [`CricketServer`] on an [`oncrpc::RpcServer`] and return both.
pub fn make_rpc_server(server: Arc<CricketServer>) -> Arc<oncrpc::RpcServer> {
    Arc::new(make_session_rpc_inner(server, 0))
}

/// Build an `RpcServer` bound to one session of `server`, with the QoS
/// admission gate installed. Public so in-process harnesses (benches,
/// examples) serve per-session views through the same admission path as
/// real connections.
pub fn make_session_rpc(server: Arc<CricketServer>, session: SessionId) -> oncrpc::RpcServer {
    make_session_rpc_inner(server, session)
}

fn make_session_rpc_inner(server: Arc<CricketServer>, session: SessionId) -> oncrpc::RpcServer {
    let rpc = oncrpc::RpcServer::new();
    rpc.register(
        cricket_proto::CRICKET_CUDA,
        cricket_proto::CRICKET_V1,
        Arc::new(QosGate {
            inner: cricket_proto::CricketV1Dispatch(service::Sessioned::new(
                Arc::clone(&server),
                session,
            )),
            server,
            session,
        }),
    );
    rpc
}

/// How [`serve_tcp_sessions_mode`] maps connections onto OS threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// One thread per connection, classic serial request/reply loop.
    Serial,
    /// One thread per connection plus a per-connection reply-writer thread
    /// ([`oncrpc::RpcServer::serve_pipelined`]). The historical default.
    Pipelined,
    /// A fixed pool of `max_conns` serving threads, each owning one
    /// connection at a time (libtirpc-style); connections beyond the pool
    /// wait unserved until a slot frees. This is the honest
    /// thread-per-connection baseline at a fixed thread budget for the
    /// connscale bench.
    PipelinedBounded {
        /// Serving threads — also the max concurrently served connections.
        max_conns: usize,
    },
    /// The completion-driven reactor ([`oncrpc::serve_tcp_reactor`]):
    /// every connection multiplexed over one poller thread, `workers`
    /// execution shards, and one completion writer.
    Reactor {
        /// Worker shards executing `Parked` procedures.
        workers: usize,
    },
}

/// Classify a Cricket procedure for the reactor's inline fast path.
///
/// `Done` procedures answer from host-visible server state without taking
/// a scheduler turn, a device lock for simulated time, or any condvar wait
/// (the `host_call` paths in [`service`]); they are safe to execute inline
/// on the reactor thread. Everything else — anything routed through
/// `enqueue_at` / `sync_enqueue_at` / `wait_*`, i.e. anything that can
/// block on a scheduler turn — must park on a worker shard.
pub fn proc_class(proc: u32) -> oncrpc::ProcClass {
    use cricket_proto::cricket_v1 as p;
    match proc {
        p::RPC_NULL
        | p::CUDA_GET_DEVICE_COUNT
        | p::CUDA_GET_DEVICE_PROPERTIES
        | p::CUDA_SET_DEVICE
        | p::CUDA_GET_DEVICE
        | p::CUDA_MEM_GET_INFO
        | p::CUDA_GET_LAST_ERROR
        | p::CUSOLVER_DN_DGETRF_BUFFER_SIZE
        | p::SRV_GET_STATS
        | p::SRV_RESET_STATS
        | p::SRV_SET_SCHEDULER
        | p::CRICKET_QOS_SET => oncrpc::ProcClass::Done,
        _ => oncrpc::ProcClass::Parked,
    }
}

/// The [`proc_class`] table as a reactor [`oncrpc::Classifier`]: calls to
/// foreign programs/versions are parked so the full dispatcher produces
/// the proper error reply off the reactor thread.
pub fn cricket_classifier() -> oncrpc::Classifier {
    Arc::new(|prog, vers, proc| {
        if prog == cricket_proto::CRICKET_CUDA && vers == cricket_proto::CRICKET_V1 {
            proc_class(proc)
        } else {
            oncrpc::ProcClass::Parked
        }
    })
}

/// Build one connection's `RpcServer`: its own session view over the shared
/// [`CricketServer`], sharing the at-most-once replay cache.
pub(crate) fn session_rpc(
    server: &Arc<CricketServer>,
    replay: &Arc<oncrpc::ReplayCache>,
    session: SessionId,
) -> oncrpc::RpcServer {
    let rpc = oncrpc::RpcServer::new();
    rpc.set_replay_cache(Arc::clone(replay));
    // Migration's eviction/adoption gate: calls carrying a client-token
    // credential are admitted or refused per token before replay lookup,
    // and their completion is reported so eviction can drain in-flight
    // work before the final snapshot.
    struct SessionGate {
        server: Arc<CricketServer>,
        session: SessionId,
    }
    impl oncrpc::server::TokenGate for SessionGate {
        fn admit(&self, token: u64) -> bool {
            self.server.observe_token(token, self.session)
        }
        fn complete(&self, token: u64) {
            self.server.call_complete(token);
        }
    }
    rpc.set_token_gate(Arc::new(SessionGate {
        server: Arc::clone(server),
        session,
    }));
    rpc.register(
        cricket_proto::CRICKET_CUDA,
        cricket_proto::CRICKET_V1,
        Arc::new(QosGate {
            inner: cricket_proto::CricketV1Dispatch(service::Sessioned::new(
                Arc::clone(server),
                session,
            )),
            server: Arc::clone(server),
            session,
        }),
    );
    rpc
}

/// Serve `server` over TCP with hardened per-connection sessions through
/// the *pipelined* reply path. Superseded by [`ServerBuilder`].
#[deprecated(note = "use ServerBuilder::new(addr).server(server).serve()")]
pub fn serve_tcp_sessions<A: std::net::ToSocketAddrs>(
    server: Arc<CricketServer>,
    addr: A,
) -> oncrpc::RpcResult<(oncrpc::server::ServerHandle, Arc<oncrpc::ReplayCache>)> {
    builder::serve_sessions(server, addr, ServeMode::Pipelined, None)
}

/// [`serve_tcp_sessions`] with an explicit [`ServeMode`]. Superseded by
/// [`ServerBuilder`].
#[deprecated(note = "use ServerBuilder::new(addr).server(server).mode(mode).serve()")]
pub fn serve_tcp_sessions_mode<A: std::net::ToSocketAddrs>(
    server: Arc<CricketServer>,
    addr: A,
    mode: ServeMode,
) -> oncrpc::RpcResult<(oncrpc::server::ServerHandle, Arc<oncrpc::ReplayCache>)> {
    builder::serve_sessions(server, addr, mode, None)
}
