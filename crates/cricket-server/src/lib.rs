//! The Cricket server.
//!
//! "The Cricket server executes the CUDA APIs and forwards the results back
//! to the application" (paper §3.3). This crate implements that server for
//! the simulated GPU:
//!
//! * [`service`] — the generated [`cricket_proto::CricketV1Service`] trait
//!   implemented over [`vgpu::Device`], with per-API host-side cost
//!   accounting charged to the shared virtual clock;
//! * [`scheduler`] — configurable GPU-sharing policies (FIFO, round-robin,
//!   priority) arbitrating concurrent client sessions, the paper's
//!   "managing the shared access through configurable schedulers";
//! * [`checkpoint`] — serialization of the entire GPU-side state (memory,
//!   modules, functions, streams, events) into an XDR blob and exact-handle
//!   restore, the paper's Checkpoint/Restart support;
//! * [`transport`] — the simulated client↔server paths: an in-process
//!   transport that carries real RPC bytes through the functional guest TCP
//!   stack and charges network time from the environment's cost model.
//!
//! The `cricket-server` binary serves the protocol over real TCP.

pub mod checkpoint;
pub mod scheduler;
pub mod service;
pub mod transport;

pub use scheduler::{SchedulerPolicy, SessionId};
pub use service::{CricketServer, ServerConfig, SessionCleanup};
pub use transport::SimTransport;

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Register a [`CricketServer`] on an [`oncrpc::RpcServer`] and return both.
pub fn make_rpc_server(server: Arc<CricketServer>) -> Arc<oncrpc::RpcServer> {
    let rpc = Arc::new(oncrpc::RpcServer::new());
    rpc.register(
        cricket_proto::CRICKET_CUDA,
        cricket_proto::CRICKET_V1,
        Arc::new(cricket_proto::CricketV1Dispatch(service::Sessioned::new(
            server, 0,
        ))),
    );
    rpc
}

/// Serve `server` over TCP with hardened per-connection sessions:
///
/// * every accepted connection becomes its own [`SessionId`], so the
///   scheduler arbitrates clients individually;
/// * all connections share one at-most-once [`oncrpc::ReplayCache`] — a
///   client that retransmits a non-idempotent call (same client token, same
///   xid), even over a fresh connection after a reset, gets the original
///   reply instead of a second execution;
/// * when a connection ends — clean close or mid-call reset — the session's
///   vGPU resources (memory, streams, events, modules, library handles) are
///   reclaimed via [`CricketServer::release_session`];
/// * each connection is served through the *pipelined* reply path
///   ([`oncrpc::RpcServer::serve_pipelined`]): requests are read and
///   dispatched in order while a writer thread drains replies, so a client
///   streaming asynchronous calls (kernel launches that only enqueue device
///   work) is not serialized on reply round trips. If the socket cannot be
///   duplicated the connection falls back to the classic serial loop.
///
/// Returns the listener handle plus the shared replay cache (its
/// [`oncrpc::ReplayCache::stats`] telemetry counts replay hits).
pub fn serve_tcp_sessions<A: std::net::ToSocketAddrs>(
    server: Arc<CricketServer>,
    addr: A,
) -> oncrpc::RpcResult<(oncrpc::server::ServerHandle, Arc<oncrpc::ReplayCache>)> {
    let replay = Arc::new(oncrpc::ReplayCache::default());
    let shared = Arc::clone(&replay);
    let next_session = AtomicU32::new(1);
    let handle = oncrpc::server::serve_tcp_with(addr, move |mut conn| {
        let session = next_session.fetch_add(1, Ordering::Relaxed);
        let rpc = oncrpc::RpcServer::new();
        rpc.set_replay_cache(Arc::clone(&shared));
        rpc.register(
            cricket_proto::CRICKET_CUDA,
            cricket_proto::CRICKET_V1,
            Arc::new(cricket_proto::CricketV1Dispatch(service::Sessioned::new(
                Arc::clone(&server),
                session,
            ))),
        );
        match conn.try_clone() {
            Ok(writer) => {
                let _ = rpc.serve_pipelined(&mut conn, writer);
            }
            Err(_) => {
                let _ = rpc.serve_connection(&mut conn);
            }
        }
        // The client is gone (or reset): reclaim everything it still holds.
        // Replay-cache entries are deliberately kept — a reconnecting client
        // may still retransmit calls it sent on the dead connection.
        server.release_session(session);
    })?;
    Ok((handle, replay))
}
