//! The single server entry point: [`ServerBuilder`].
//!
//! Every way of standing up a Cricket server — serial, pipelined, bounded
//! pool, completion-driven reactor, with or without fleet-directory
//! registration — goes through one builder:
//!
//! ```no_run
//! use cricket_server::{ServerBuilder, ServeMode};
//!
//! let handle = ServerBuilder::new("127.0.0.1:0")
//!     .mode(ServeMode::Reactor { workers: 2 })
//!     .serve()
//!     .unwrap();
//! println!("serving on {}", handle.addr());
//! handle.shutdown();
//! ```
//!
//! With `.directory(dir_addr, prog, vers)` the server registers itself as a
//! *shard* in an [`oncrpc::Portmap`] directory on start, heartbeats a fresh
//! [`oncrpc::LoadReport`] on an interval, and deregisters on
//! [`ServeHandle::shutdown`]. [`ServeHandle::kill`] skips deregistration —
//! that simulates a crashed shard whose stale directory entry clients must
//! fail over around.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use oncrpc::portmap::client::PortmapClient;
use oncrpc::{ReplayCache, RpcError, RpcResult, TcpTransport};
use simnet::clock::SimClock;

use crate::scheduler::SchedulerPolicy;
use crate::service::{CricketServer, ServerConfig};
use crate::{cricket_classifier, session_rpc, ServeMode};

/// Where (and as what) a server registers itself in a fleet directory.
#[derive(Debug, Clone)]
pub struct DirectoryRegistration {
    /// The directory service's TCP address (an [`oncrpc::Portmap`] serving
    /// the shard procedures).
    pub dir_addr: SocketAddr,
    /// RPC program number the shard serves (normally
    /// `cricket_proto::CRICKET_CUDA`).
    pub prog: u32,
    /// RPC program version (normally `cricket_proto::CRICKET_V1`).
    pub vers: u32,
    /// Interval between load-report heartbeats.
    pub heartbeat: Duration,
}

/// Builder for every Cricket server deployment shape. See the [module
/// docs](self) for an example.
pub struct ServerBuilder {
    addrs: std::io::Result<Vec<SocketAddr>>,
    server: Option<Arc<CricketServer>>,
    config: ServerConfig,
    mode: ServeMode,
    reactor: Option<oncrpc::ReactorConfig>,
    policy: Option<SchedulerPolicy>,
    directory: Option<DirectoryRegistration>,
}

impl ServerBuilder {
    /// Start a builder listening on `addr` (resolved eagerly; resolution
    /// errors surface from [`Self::serve`]). Defaults: a fresh
    /// [`CricketServer`] from [`ServerConfig::default`], pipelined serving,
    /// FIFO scheduling, no directory registration.
    pub fn new<A: std::net::ToSocketAddrs>(addr: A) -> Self {
        Self {
            addrs: addr.to_socket_addrs().map(|it| it.collect()),
            server: None,
            config: ServerConfig::default(),
            mode: ServeMode::Pipelined,
            reactor: None,
            policy: None,
            directory: None,
        }
    }

    /// Serve an existing [`CricketServer`] instead of building a fresh one
    /// (ignores [`Self::config`]).
    pub fn server(mut self, server: Arc<CricketServer>) -> Self {
        self.server = Some(server);
        self
    }

    /// Device configuration for the server this builder creates.
    pub fn config(mut self, config: ServerConfig) -> Self {
        self.config = config;
        self
    }

    /// How connections are multiplexed onto threads.
    pub fn mode(mut self, mode: ServeMode) -> Self {
        self.mode = mode;
        self
    }

    /// Reactor tuning for [`ServeMode::Reactor`] (worker count still comes
    /// from the mode; a `classify` of `None` gets the Cricket classifier).
    pub fn reactor_config(mut self, cfg: oncrpc::ReactorConfig) -> Self {
        self.reactor = Some(cfg);
        self
    }

    /// GPU-sharing scheduler policy.
    pub fn scheduler(mut self, policy: SchedulerPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// QoS / overload-control configuration (session watermark, admission
    /// retry hint). Applies to the server this builder creates; ignored
    /// when [`Self::server`] supplies an existing one.
    pub fn qos(mut self, qos: crate::service::QosServerConfig) -> Self {
        self.config.qos = qos;
        self
    }

    /// Register this server as a shard of `(prog, vers)` in the directory
    /// at `dir_addr`, with a 250 ms load-report heartbeat (tune via
    /// [`Self::heartbeat`]). Resolution errors surface from [`Self::serve`]
    /// as an unregistered server would silently never receive fleet
    /// traffic.
    pub fn directory<A: std::net::ToSocketAddrs>(
        mut self,
        dir_addr: A,
        prog: u32,
        vers: u32,
    ) -> Self {
        match dir_addr.to_socket_addrs().map(|mut it| it.next()) {
            Ok(Some(dir_addr)) => {
                self.directory = Some(DirectoryRegistration {
                    dir_addr,
                    prog,
                    vers,
                    heartbeat: Duration::from_millis(250),
                });
            }
            Ok(None) => {
                self.addrs = Err(std::io::Error::new(
                    std::io::ErrorKind::AddrNotAvailable,
                    "directory address resolved to nothing",
                ));
            }
            Err(e) => self.addrs = Err(e),
        }
        self
    }

    /// Heartbeat interval for directory load reports (no-op without
    /// [`Self::directory`]).
    pub fn heartbeat(mut self, interval: Duration) -> Self {
        if let Some(dir) = self.directory.as_mut() {
            dir.heartbeat = interval;
        }
        self
    }

    /// Bind, start serving, register with the directory (if configured),
    /// and return the running server's handle.
    pub fn serve(self) -> RpcResult<ServeHandle> {
        let addrs = self.addrs.map_err(RpcError::Io)?;
        let server = self
            .server
            .unwrap_or_else(|| CricketServer::new(self.config, SimClock::new()));
        if let Some(policy) = self.policy {
            server.scheduler.set_policy(policy);
        }
        let (inner, replay) =
            serve_sessions(Arc::clone(&server), &addrs[..], self.mode, self.reactor)?;
        let registration = match self.directory {
            Some(dir) => Some(Registration::start(&server, inner.addr(), dir)?),
            None => None,
        };
        Ok(ServeHandle {
            inner,
            replay,
            server,
            registration: std::sync::Mutex::new(registration),
        })
    }
}

/// A running heartbeat loop plus the identity needed to deregister.
struct Registration {
    dir: DirectoryRegistration,
    port: u32,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Registration {
    /// Register `(prog, vers, port)` with an initial load report, then spawn
    /// the heartbeat thread. Registration failure fails `serve` — a shard
    /// the directory never saw would never receive fleet traffic.
    fn start(
        server: &Arc<CricketServer>,
        addr: SocketAddr,
        dir: DirectoryRegistration,
    ) -> RpcResult<Self> {
        let port = u32::from(addr.port());
        let mut client = dir_client(dir.dir_addr)?;
        client.shard_set(dir.prog, dir.vers, port, server.load_report())?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let server = Arc::clone(server);
            let stop = Arc::clone(&stop);
            let dir = dir.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    std::thread::park_timeout(dir.heartbeat);
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    // Re-resolve the client each beat: the directory may have
                    // restarted, and a beat is cheap at this cadence.
                    let Ok(mut client) = dir_client(dir.dir_addr) else {
                        continue;
                    };
                    let _ = client.shard_set(dir.prog, dir.vers, port, server.load_report());
                }
            })
        };
        Ok(Self {
            dir,
            port,
            stop,
            thread: Some(thread),
        })
    }

    /// Stop heartbeating; deregister from the directory iff `deregister`.
    fn finish(mut self, deregister: bool) {
        self.stop_heartbeat();
        if deregister {
            if let Ok(mut client) = dir_client(self.dir.dir_addr) {
                let _ = client.shard_unset(self.dir.prog, self.dir.vers, self.port);
            }
        }
    }

    fn stop_heartbeat(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            t.thread().unpark();
            let _ = t.join();
        }
    }
}

impl Drop for Registration {
    fn drop(&mut self) {
        // A `ServeHandle` dropped without `shutdown`/`kill` must not leak
        // the heartbeat thread. No deregistration here: drop-without-
        // shutdown is the crash path.
        self.stop_heartbeat();
    }
}

fn dir_client(addr: SocketAddr) -> RpcResult<PortmapClient> {
    let t = TcpTransport::connect(addr)?;
    Ok(PortmapClient::new(Box::new(t)))
}

/// A running Cricket server started by [`ServerBuilder::serve`].
pub struct ServeHandle {
    inner: oncrpc::ServerHandle,
    replay: Arc<ReplayCache>,
    server: Arc<CricketServer>,
    registration: std::sync::Mutex<Option<Registration>>,
}

impl ServeHandle {
    /// The bound listening address.
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr()
    }

    /// The server's shared state (scheduler, devices, clock, stats).
    pub fn server(&self) -> &Arc<CricketServer> {
        &self.server
    }

    /// The shared at-most-once replay cache.
    pub fn replay(&self) -> &Arc<ReplayCache> {
        &self.replay
    }

    /// Graceful stop: deregister from the directory (if registered), stop
    /// the heartbeat, close the listener.
    pub fn shutdown(self) {
        self.stop(true);
    }

    /// Crash stop: close the listener *without* deregistering, leaving a
    /// stale shard entry in the directory. Clients resolving through the
    /// directory must detect the dead listener and fail over to the
    /// next-best shard.
    pub fn kill(self) {
        self.stop(false);
    }

    fn stop(self, deregister: bool) {
        let reg = self
            .registration
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(reg) = reg {
            reg.finish(deregister);
        }
        self.inner.shutdown();
    }

    /// Split into the raw parts the deprecated pre-fleet entry points
    /// returned. Drops directory state (deregistering if registered).
    pub fn into_parts(self) -> (oncrpc::ServerHandle, Arc<ReplayCache>) {
        let reg = self
            .registration
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(reg) = reg {
            reg.finish(true);
        }
        let Self { inner, replay, .. } = self;
        (inner, replay)
    }
}

/// The mode dispatch shared by [`ServerBuilder::serve`] and the deprecated
/// `serve_tcp_sessions*` shims. All modes share the same session semantics —
/// one `SessionId` per accepted connection, one shared replay cache,
/// [`CricketServer::release_session`] exactly once when the connection ends —
/// and differ only in how connections map onto threads.
pub(crate) fn serve_sessions<A: std::net::ToSocketAddrs>(
    server: Arc<CricketServer>,
    addr: A,
    mode: ServeMode,
    reactor: Option<oncrpc::ReactorConfig>,
) -> RpcResult<(oncrpc::ServerHandle, Arc<ReplayCache>)> {
    let replay = Arc::new(ReplayCache::default());
    server.attach_replay(&replay);
    let shared = Arc::clone(&replay);
    let handle = match mode {
        ServeMode::Reactor { workers } => {
            let mut cfg = reactor.unwrap_or_default();
            cfg.workers = workers.max(1);
            if cfg.classify.is_none() {
                cfg.classify = Some(cricket_classifier());
            }
            let next_session = AtomicU32::new(1);
            oncrpc::serve_tcp_reactor(addr, cfg, move |_conn| {
                let session = next_session.fetch_add(1, Ordering::Relaxed);
                let rpc = Arc::new(session_rpc(&server, &shared, session));
                let server = Arc::clone(&server);
                oncrpc::ConnHandler {
                    rpc,
                    // Runs after the session's last in-flight call completed
                    // and its last reply hit the completion ring. Replay
                    // entries are deliberately kept — a reconnecting client
                    // may still retransmit calls from the dead connection.
                    on_close: Some(Box::new(move || {
                        server.release_session(session);
                    })),
                }
            })?
        }
        ServeMode::PipelinedBounded { max_conns } => {
            // Fixed serving pool: accepted connections queue; `max_conns`
            // threads each serve one connection to completion at a time.
            let (conn_tx, conn_rx) = crossbeam_channel::unbounded::<oncrpc::TcpTransport>();
            let conn_rx = Arc::new(std::sync::Mutex::new(conn_rx));
            let next_session = Arc::new(AtomicU32::new(1));
            for _ in 0..max_conns.max(1) {
                let conn_rx = Arc::clone(&conn_rx);
                let server = Arc::clone(&server);
                let shared = Arc::clone(&shared);
                let next_session = Arc::clone(&next_session);
                std::thread::spawn(move || loop {
                    let queued = {
                        let rx = conn_rx.lock().unwrap_or_else(|e| e.into_inner());
                        rx.recv()
                    };
                    let Ok(mut conn) = queued else { break };
                    let session = next_session.fetch_add(1, Ordering::Relaxed);
                    let rpc = session_rpc(&server, &shared, session);
                    match conn.try_clone() {
                        Ok(writer) => {
                            let _ = rpc.serve_pipelined(&mut conn, writer);
                        }
                        Err(_) => {
                            let _ = rpc.serve_connection(&mut conn);
                        }
                    }
                    server.release_session(session);
                });
            }
            oncrpc::server::serve_tcp_with(addr, move |conn| {
                let _ = conn_tx.send(conn);
            })?
        }
        ServeMode::Serial | ServeMode::Pipelined => {
            let next_session = AtomicU32::new(1);
            oncrpc::server::serve_tcp_with(addr, move |mut conn| {
                let session = next_session.fetch_add(1, Ordering::Relaxed);
                let rpc = session_rpc(&server, &shared, session);
                let writer = match mode {
                    ServeMode::Pipelined => conn.try_clone().ok(),
                    _ => None,
                };
                match writer {
                    Some(writer) => {
                        let _ = rpc.serve_pipelined(&mut conn, writer);
                    }
                    None => {
                        let _ = rpc.serve_connection(&mut conn);
                    }
                }
                // The client is gone (or reset): reclaim everything it
                // still holds. Replay-cache entries are deliberately kept —
                // a reconnecting client may still retransmit calls it sent
                // on the dead connection.
                server.release_session(session);
            })?
        }
    };
    Ok((handle, replay))
}
