//! `cricket-server` — serve the Cricket CUDA protocol over TCP.
//!
//! Usage: `cricket-server [--listen ADDR:PORT] [--devices N]`
//!
//! Clients (the examples in this repository, or any ONC RPC client speaking
//! `cricket.x`) connect with program 537395001 version 1.

use cricket_server::{make_rpc_server, CricketServer, ServerConfig};
use simnet::SimClock;

fn main() {
    let mut listen = "127.0.0.1:20495".to_string();
    let mut devices = 4i32;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = args.next().expect("--listen needs ADDR:PORT"),
            "--devices" => {
                devices = args
                    .next()
                    .expect("--devices needs N")
                    .parse()
                    .expect("N must be an integer")
            }
            "-h" | "--help" => {
                eprintln!("usage: cricket-server [--listen ADDR:PORT] [--devices N]");
                return;
            }
            other => {
                eprintln!("cricket-server: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let clock = SimClock::new();
    let server = CricketServer::new(
        ServerConfig {
            device_count: devices,
            ..ServerConfig::default()
        },
        clock,
    );
    let rpc = make_rpc_server(server);
    let handle = oncrpc::server::serve_tcp(rpc, listen.as_str()).expect("bind listener");
    println!(
        "cricket-server: simulated A100 at {} (program {}, version {})",
        handle.addr(),
        cricket_proto::CRICKET_CUDA,
        cricket_proto::CRICKET_V1
    );
    // Serve until killed.
    loop {
        std::thread::park();
    }
}
