//! GPU-sharing scheduler.
//!
//! "Our approach allows the flexibility of sharing GPU devices across many
//! unikernels, managing the shared access through configurable schedulers"
//! (paper §5). Every API call acquires the device through the scheduler;
//! when several sessions contend, the policy decides who goes next.

use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;

/// Identifies one client session (one unikernel instance).
pub type SessionId = u32;

/// Arbitration policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerPolicy {
    /// First come, first served (arrival order).
    Fifo,
    /// Rotate between sessions: after serving session S, waiters from
    /// sessions other than S are preferred.
    RoundRobin,
    /// Lowest priority value first (per-session priorities; default 100).
    Priority,
}

impl SchedulerPolicy {
    /// Wire encoding used by `SRV_SET_SCHEDULER`.
    pub fn from_i32(v: i32) -> Option<Self> {
        match v {
            0 => Some(SchedulerPolicy::Fifo),
            1 => Some(SchedulerPolicy::RoundRobin),
            2 => Some(SchedulerPolicy::Priority),
            _ => None,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Waiter {
    session: SessionId,
    ticket: u64,
    priority: u32,
}

#[derive(Debug, Default)]
struct State {
    busy: bool,
    queue: Vec<Waiter>,
    next_ticket: u64,
    last_served: Option<SessionId>,
    /// Ops served per session (telemetry / fairness tests).
    served: HashMap<SessionId, u64>,
}

/// The scheduler: a policy-aware device lock.
pub struct Scheduler {
    policy: Mutex<SchedulerPolicy>,
    state: Mutex<State>,
    cond: Condvar,
    priorities: Mutex<HashMap<SessionId, u32>>,
}

impl Default for Scheduler {
    fn default() -> Self {
        Self::new(SchedulerPolicy::Fifo)
    }
}

/// RAII guard for device access; releasing wakes the next waiter.
pub struct DeviceTurn<'a> {
    sched: &'a Scheduler,
}

impl Drop for DeviceTurn<'_> {
    fn drop(&mut self) {
        let mut st = self.sched.state.lock();
        st.busy = false;
        drop(st);
        self.sched.cond.notify_all();
    }
}

impl Scheduler {
    /// Create with a policy.
    pub fn new(policy: SchedulerPolicy) -> Self {
        Self {
            policy: Mutex::new(policy),
            state: Mutex::new(State::default()),
            cond: Condvar::new(),
            priorities: Mutex::new(HashMap::new()),
        }
    }

    /// Change the policy at runtime (`SRV_SET_SCHEDULER`).
    pub fn set_policy(&self, policy: SchedulerPolicy) {
        *self.policy.lock() = policy;
        self.cond.notify_all();
    }

    /// Current policy.
    pub fn policy(&self) -> SchedulerPolicy {
        *self.policy.lock()
    }

    /// Set a session's priority (lower = sooner; default 100).
    pub fn set_priority(&self, session: SessionId, priority: u32) {
        self.priorities.lock().insert(session, priority);
    }

    /// Ops served per session so far.
    pub fn served(&self) -> HashMap<SessionId, u64> {
        self.state.lock().served.clone()
    }

    /// Block until it is `session`'s turn; returns a guard holding the
    /// device.
    pub fn acquire(&self, session: SessionId) -> DeviceTurn<'_> {
        let priority = self.priorities.lock().get(&session).copied().unwrap_or(100);
        let mut st = self.state.lock();
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queue.push(Waiter {
            session,
            ticket,
            priority,
        });
        loop {
            if !st.busy {
                let policy = *self.policy.lock();
                if let Some(idx) = Self::pick(&st, policy) {
                    if st.queue[idx].ticket == ticket {
                        st.queue.swap_remove(idx);
                        st.busy = true;
                        st.last_served = Some(session);
                        *st.served.entry(session).or_insert(0) += 1;
                        return DeviceTurn { sched: self };
                    }
                }
            }
            self.cond.wait(&mut st);
        }
    }

    /// Index into the queue of the waiter the policy selects next.
    fn pick(st: &State, policy: SchedulerPolicy) -> Option<usize> {
        if st.queue.is_empty() {
            return None;
        }
        let by_ticket = |a: &Waiter, b: &Waiter| a.ticket.cmp(&b.ticket);
        let idx = match policy {
            SchedulerPolicy::Fifo => st
                .queue
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| by_ticket(a, b))
                .map(|(i, _)| i),
            SchedulerPolicy::RoundRobin => {
                // Prefer the oldest waiter from a different session than the
                // one just served; fall back to FIFO.
                let other = st
                    .queue
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| Some(w.session) != st.last_served)
                    .min_by(|(_, a), (_, b)| by_ticket(a, b))
                    .map(|(i, _)| i);
                other.or_else(|| {
                    st.queue
                        .iter()
                        .enumerate()
                        .min_by(|(_, a), (_, b)| by_ticket(a, b))
                        .map(|(i, _)| i)
                })
            }
            SchedulerPolicy::Priority => st
                .queue
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.priority.cmp(&b.priority).then(a.ticket.cmp(&b.ticket)))
                .map(|(i, _)| i),
        };
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_serves_in_arrival_order() {
        let s = Scheduler::new(SchedulerPolicy::Fifo);
        {
            let _turn = s.acquire(1);
        }
        {
            let _turn = s.acquire(2);
        }
        let served = s.served();
        assert_eq!(served[&1], 1);
        assert_eq!(served[&2], 1);
    }

    #[test]
    fn guard_releases_on_drop() {
        let s = Arc::new(Scheduler::new(SchedulerPolicy::Fifo));
        let turn = s.acquire(1);
        let s2 = Arc::clone(&s);
        let waiter = std::thread::spawn(move || {
            let _turn = s2.acquire(2);
        });
        // Give the waiter time to queue, then release.
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(turn);
        waiter.join().unwrap();
        assert_eq!(s.served()[&2], 1);
    }

    #[test]
    fn priority_prefers_lower_value() {
        let s = Arc::new(Scheduler::new(SchedulerPolicy::Priority));
        s.set_priority(1, 200);
        s.set_priority(2, 1);
        let gate = s.acquire(0); // hold the device while waiters queue
        let mut handles = Vec::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        for sess in [1u32, 2] {
            let s2 = Arc::clone(&s);
            let order2 = Arc::clone(&order);
            handles.push(std::thread::spawn(move || {
                let _t = s2.acquire(sess);
                order2.lock().push(sess);
            }));
            // Ensure deterministic queueing order (1 queues first).
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        drop(gate);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), vec![2, 1], "high-priority session 2 first");
    }

    #[test]
    fn round_robin_alternates_sessions() {
        let s = Arc::new(Scheduler::new(SchedulerPolicy::RoundRobin));
        let gate = s.acquire(7); // last_served = 7
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        // Queue: 7 again (ticket 1), then 8 (ticket 2). RR should pick 8
        // first because 7 was just served.
        for sess in [7u32, 8] {
            let s2 = Arc::clone(&s);
            let order2 = Arc::clone(&order);
            handles.push(std::thread::spawn(move || {
                let _t = s2.acquire(sess);
                std::thread::sleep(std::time::Duration::from_millis(5));
                order2.lock().push(sess);
            }));
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        drop(gate);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), vec![8, 7]);
    }

    #[test]
    fn policy_change_at_runtime() {
        let s = Scheduler::new(SchedulerPolicy::Fifo);
        assert_eq!(s.policy(), SchedulerPolicy::Fifo);
        s.set_policy(SchedulerPolicy::Priority);
        assert_eq!(s.policy(), SchedulerPolicy::Priority);
        assert_eq!(
            SchedulerPolicy::from_i32(1),
            Some(SchedulerPolicy::RoundRobin)
        );
        assert_eq!(SchedulerPolicy::from_i32(9), None);
    }

    #[test]
    fn heavy_contention_is_safe_and_counts_all_ops() {
        let s = Arc::new(Scheduler::new(SchedulerPolicy::RoundRobin));
        let mut handles = Vec::new();
        for sess in 0..4u32 {
            let s2 = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let _t = s2.acquire(sess);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let served = s.served();
        assert_eq!(served.values().sum::<u64>(), 200);
        assert!(served.values().all(|&v| v == 50));
    }
}
