//! GPU-sharing scheduler: an arbiter of device *time*, not a device lock.
//!
//! "Our approach allows the flexibility of sharing GPU devices across many
//! unikernels, managing the shared access through configurable schedulers"
//! (paper §5). Under the asynchronous execution engine, API calls no longer
//! hold the device for their full simulated duration — async work enqueues
//! onto per-stream command queues and runs on virtual timelines. What the
//! scheduler arbitrates is the *issue slot*: when several sessions contend,
//! the policy decides whose command is appended to the device next, and the
//! per-session ledger charges each session for the device time its commands
//! occupy. The critical section is the enqueue itself (microseconds of host
//! time), never the device time.
//!
//! # Weighted fair queuing
//!
//! The `Wfq` policy implements start-time fair queuing over the existing
//! `served_ns` ledger. Each session carries a virtual finish time (`vft`):
//! charging `ns` of device time advances it by `ns * WEIGHT_SCALE / weight`,
//! so a weight-4 session's clock runs four times slower and it wins the
//! issue slot four times as often under backlog. A global virtual clock
//! (`vclock`) tracks the start tag of the work in service; sessions joining
//! (or returning from idle) are floored at `vclock`, so idling never banks
//! credit and a newcomer cannot starve incumbents. `Fifo`, `RoundRobin`,
//! and `Priority` remain as degenerate configurations of the same queue.

use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifies one client session (one unikernel instance).
pub type SessionId = u32;

/// Fixed-point scale for the virtual-finish-time ledger: charging `ns` at
/// weight `w` advances the session's clock by `ns * WEIGHT_SCALE / w`.
pub const WEIGHT_SCALE: u64 = 1 << 10;

/// Real-time bound on the anticipation window: how long the pick winner
/// holds its claim open for the just-served session's next request. Long
/// enough for a closed-loop client to unwind one call and issue the next
/// even when the OS delays its thread a few scheduling periods; short
/// enough that a departed session costs one scheduling hiccup, not a
/// stall. The window only ever opens for a session holding banked WFQ
/// credit (see `IssueTurn::drop`), so this bound is off every hot path.
const ANTICIPATION_WINDOW: std::time::Duration = std::time::Duration::from_millis(1);

/// Arbitration policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerPolicy {
    /// First come, first served (arrival order).
    Fifo,
    /// Rotate between sessions: after serving session S, waiters from
    /// sessions other than S are preferred.
    RoundRobin,
    /// Lowest priority value first (per-session priorities; default 100).
    Priority,
    /// Weighted fair queuing: smallest virtual finish time first, weighted
    /// by per-session weights (default 1).
    Wfq,
}

impl SchedulerPolicy {
    /// Wire encoding used by `SRV_SET_SCHEDULER`.
    pub fn from_i32(v: i32) -> Option<Self> {
        match v {
            0 => Some(SchedulerPolicy::Fifo),
            1 => Some(SchedulerPolicy::RoundRobin),
            2 => Some(SchedulerPolicy::Priority),
            3 => Some(SchedulerPolicy::Wfq),
            _ => None,
        }
    }
}

/// Per-session QoS configuration (`CRICKET_QOS_SET` payload). Zero means
/// "unlimited" for the quota fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QosSpec {
    /// WFQ weight (>=1; clamped). A weight-4 session receives 4x the device
    /// share of a weight-1 session under backlog.
    pub weight: u32,
    /// Priority value for the `Priority` policy (lower = sooner).
    pub priority: u32,
    /// Device-ns of work permitted per second of (virtual) clock time;
    /// 0 = unlimited.
    pub rate_ns_per_s: u64,
    /// Token-bucket burst capacity in device-ns; 0 = one second's worth of
    /// `rate_ns_per_s`.
    pub burst_ns: u64,
    /// Resident device-memory ceiling in bytes; 0 = unlimited.
    pub max_resident_bytes: u64,
}

impl Default for QosSpec {
    fn default() -> Self {
        Self {
            weight: 1,
            priority: 100,
            rate_ns_per_s: 0,
            burst_ns: 0,
            max_resident_bytes: 0,
        }
    }
}

/// QoS config plus token-bucket state for one session.
#[derive(Debug, Clone, Copy)]
struct SessionQos {
    spec: QosSpec,
    /// Device-ns currently in the bucket.
    bucket_ns: u64,
    /// Clock timestamp of the last refill.
    bucket_at_ns: u64,
    /// The bucket starts full on first use, not at configuration time —
    /// priming lazily keeps `set_qos` clock-free.
    bucket_primed: bool,
}

impl SessionQos {
    fn with_spec(spec: QosSpec) -> Self {
        Self {
            spec,
            bucket_ns: 0,
            bucket_at_ns: 0,
            bucket_primed: false,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Waiter {
    session: SessionId,
    ticket: u64,
    priority: u32,
}

#[derive(Debug, Default)]
struct State {
    busy: bool,
    queue: Vec<Waiter>,
    next_ticket: u64,
    last_served: Option<SessionId>,
    /// Issue slots granted per session (telemetry / fairness tests).
    served_ops: HashMap<SessionId, u64>,
    /// Device-time nanoseconds charged per session.
    served_ns: HashMap<SessionId, u64>,
    /// Per-session virtual finish times (WFQ ledger).
    vft: HashMap<SessionId, u64>,
    /// Global virtual clock: start tag of the work in service. Floors the
    /// vft of sessions arriving from idle.
    vclock: u64,
    /// Anticipation (classic anticipatory-scheduling): the session whose
    /// turn just ended and whose next request has not yet re-queued. The
    /// pick winner waits (bounded) for this session to return before
    /// claiming, so a closed-loop client racing its own wake-up latency
    /// still contends at every pick and the issue order stays the
    /// policy's — without it, WFQ can never hand a high-weight session its
    /// back-to-back turns, because the woken waiter always beats the
    /// served session's next call to the queue.
    drop_pending: Option<SessionId>,
    /// When armed, every grant appends the served session id — a debugging
    /// and test hook for asserting on the exact issue order.
    trace: Option<Vec<SessionId>>,
}

/// The scheduler: orders issue slots by policy and keeps the per-session
/// device-time ledger.
pub struct Scheduler {
    policy: Mutex<SchedulerPolicy>,
    state: Mutex<State>,
    cond: Condvar,
    /// Per-session QoS configuration. Lock order: `qos` before `state`.
    qos: Mutex<HashMap<SessionId, SessionQos>>,
    /// Calls shed with `CRICKET_BUSY` since the last `take_recent_sheds`.
    sheds: AtomicU64,
}

impl Default for Scheduler {
    fn default() -> Self {
        Self::new(SchedulerPolicy::Fifo)
    }
}

/// RAII guard for one issue slot; releasing wakes the next waiter. Hold it
/// only for the enqueue/wait bookkeeping, never for simulated device time.
pub struct IssueTurn<'a> {
    sched: &'a Scheduler,
    session: SessionId,
}

impl IssueTurn<'_> {
    /// Charge `ns` of device time to this turn's session.
    pub fn charge(&self, ns: u64) {
        self.sched.charge(self.session, ns);
    }

    /// Should the holder release the slot and requeue? True when a waiter
    /// the current policy would serve first is queued (preemption point
    /// between batch sub-op slices).
    pub fn should_yield(&self) -> bool {
        self.sched.should_yield(self.session)
    }
}

impl Drop for IssueTurn<'_> {
    fn drop(&mut self) {
        let mut st = self.sched.state.lock();
        st.busy = false;
        // Anticipate this session's next request — but only under WFQ,
        // where banked credit can make the returning session the rightful
        // next pick. Under FIFO/round-robin/priority the returning session
        // can never beat an already-queued waiter (it re-arrives with a
        // fresh ticket), so holding the slot would be a pure real-time
        // stall — fatal for open servers, where the next request is a
        // network round trip away. Skip it too when a request of this
        // session is already queued (a second connection, or a batch slice
        // that re-queued before yielding).
        let policy = *self.sched.policy.lock();
        st.drop_pending = if policy == SchedulerPolicy::Wfq
            && !st.queue.iter().any(|w| w.session == self.session)
        {
            Some(self.session)
        } else {
            None
        };
        drop(st);
        self.sched.cond.notify_all();
    }
}

impl Scheduler {
    /// Create with a policy.
    pub fn new(policy: SchedulerPolicy) -> Self {
        Self {
            policy: Mutex::new(policy),
            state: Mutex::new(State::default()),
            cond: Condvar::new(),
            qos: Mutex::new(HashMap::new()),
            sheds: AtomicU64::new(0),
        }
    }

    /// Change the policy at runtime (`SRV_SET_SCHEDULER`).
    pub fn set_policy(&self, policy: SchedulerPolicy) {
        *self.policy.lock() = policy;
        self.cond.notify_all();
    }

    /// Current policy.
    pub fn policy(&self) -> SchedulerPolicy {
        *self.policy.lock()
    }

    /// Set a session's priority (lower = sooner; default 100). Config only:
    /// never recreates ledger state for a forgotten session.
    pub fn set_priority(&self, session: SessionId, priority: u32) {
        self.qos
            .lock()
            .entry(session)
            .or_insert_with(|| SessionQos::with_spec(QosSpec::default()))
            .spec
            .priority = priority;
    }

    /// Set a session's WFQ weight (>=1; default 1). Config only: never
    /// recreates ledger state for a forgotten session.
    pub fn set_weight(&self, session: SessionId, weight: u32) {
        self.qos
            .lock()
            .entry(session)
            .or_insert_with(|| SessionQos::with_spec(QosSpec::default()))
            .spec
            .weight = weight.max(1);
    }

    /// Install a full QoS spec (`CRICKET_QOS_SET`), resetting the token
    /// bucket so a rate change takes effect immediately.
    pub fn set_qos(&self, session: SessionId, mut spec: QosSpec) {
        spec.weight = spec.weight.max(1);
        self.qos.lock().insert(session, SessionQos::with_spec(spec));
    }

    /// The session's QoS spec (defaults if never configured).
    pub fn qos_of(&self, session: SessionId) -> QosSpec {
        self.qos
            .lock()
            .get(&session)
            .map(|q| q.spec)
            .unwrap_or_default()
    }

    /// Issue slots granted per session so far.
    pub fn served_ops(&self) -> HashMap<SessionId, u64> {
        self.state.lock().served_ops.clone()
    }

    /// Device-time nanoseconds charged per session so far.
    pub fn served_ns(&self) -> HashMap<SessionId, u64> {
        self.state.lock().served_ns.clone()
    }

    /// The session's virtual finish time, if it has one (regression hook:
    /// `forget` must drop it, and config setters must not recreate it).
    pub fn wfq_vft(&self, session: SessionId) -> Option<u64> {
        self.state.lock().vft.get(&session).copied()
    }

    /// Charge `ns` of device time to `session`'s ledger and advance its
    /// virtual finish time by `ns * WEIGHT_SCALE / weight`.
    pub fn charge(&self, session: SessionId, ns: u64) {
        let weight = u64::from(
            self.qos
                .lock()
                .get(&session)
                .map(|q| q.spec.weight)
                .unwrap_or(1)
                .max(1),
        );
        let mut st = self.state.lock();
        *st.served_ns.entry(session).or_insert(0) += ns;
        let floor = st.vclock;
        let vft = st.vft.entry(session).or_insert(floor);
        *vft = (*vft).max(floor) + ns * WEIGHT_SCALE / weight;
    }

    /// Check `session`'s device-time token bucket for `want_ns` of work at
    /// clock time `now_ns`. `Ok` deducts the tokens; `Err(retry_after_ns)`
    /// is the time until the bucket holds enough.
    pub fn rate_check(&self, session: SessionId, now_ns: u64, want_ns: u64) -> Result<(), u64> {
        let mut qos = self.qos.lock();
        let Some(q) = qos.get_mut(&session) else {
            return Ok(());
        };
        let rate = q.spec.rate_ns_per_s;
        if rate == 0 {
            return Ok(());
        }
        let burst = if q.spec.burst_ns > 0 {
            q.spec.burst_ns
        } else {
            rate
        };
        if !q.bucket_primed {
            q.bucket_primed = true;
            q.bucket_ns = burst;
            q.bucket_at_ns = now_ns;
        }
        let elapsed = now_ns.saturating_sub(q.bucket_at_ns);
        let refill = (elapsed as u128 * rate as u128 / 1_000_000_000) as u64;
        q.bucket_ns = q.bucket_ns.saturating_add(refill).min(burst);
        q.bucket_at_ns = now_ns;
        if q.bucket_ns >= want_ns {
            q.bucket_ns -= want_ns;
            Ok(())
        } else {
            let deficit = (want_ns - q.bucket_ns) as u128;
            let retry = (deficit * 1_000_000_000 / rate as u128) as u64;
            Err(retry.max(1))
        }
    }

    /// Arm or disarm grant tracing. While armed, every grant appends the
    /// session id to an in-memory log drained by [`Self::take_trace`].
    pub fn set_trace(&self, on: bool) {
        let mut st = self.state.lock();
        st.trace = if on { Some(Vec::new()) } else { None };
    }

    /// Drain the grant trace recorded since [`Self::set_trace`].
    pub fn take_trace(&self) -> Vec<SessionId> {
        let mut st = self.state.lock();
        match st.trace.as_mut() {
            Some(t) => std::mem::take(t),
            None => Vec::new(),
        }
    }

    /// Record one call shed with `CRICKET_BUSY` (overload telemetry).
    pub fn note_shed(&self) {
        self.sheds.fetch_add(1, Ordering::Relaxed);
    }

    /// Sheds since the last call (drained by `load_report`).
    pub fn take_recent_sheds(&self) -> u64 {
        self.sheds.swap(0, Ordering::Relaxed)
    }

    /// Drop all per-session state (QoS config, ledgers) for a released
    /// session. Without this, session churn grows the maps without bound.
    pub fn forget(&self, session: SessionId) {
        self.qos.lock().remove(&session);
        let mut st = self.state.lock();
        st.served_ops.remove(&session);
        st.served_ns.remove(&session);
        st.vft.remove(&session);
        if st.last_served == Some(session) {
            st.last_served = None;
        }
        // A forgotten session's next request is never coming: close any
        // anticipation window held open for it.
        if st.drop_pending == Some(session) {
            st.drop_pending = None;
            self.cond.notify_all();
        }
    }

    /// Whether the scheduler still tracks any state for `session`
    /// (regression hook for `forget`).
    pub fn knows(&self, session: SessionId) -> bool {
        if self.qos.lock().contains_key(&session) {
            return true;
        }
        let st = self.state.lock();
        st.served_ops.contains_key(&session)
            || st.served_ns.contains_key(&session)
            || st.vft.contains_key(&session)
    }

    /// Block until it is `session`'s turn to issue; returns a guard holding
    /// the issue slot.
    pub fn begin(&self, session: SessionId) -> IssueTurn<'_> {
        let priority = self
            .qos
            .lock()
            .get(&session)
            .map(|q| q.spec.priority)
            .unwrap_or(100);
        let mut st = self.state.lock();
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queue.push(Waiter {
            session,
            ticket,
            priority,
        });
        // This arrival is the request the anticipation window (if any) was
        // holding the slot open for: close it and wake the waiters so the
        // pick is retaken with this session contending.
        if st.drop_pending == Some(session) {
            st.drop_pending = None;
            self.cond.notify_all();
        }
        loop {
            if !st.busy {
                let policy = *self.policy.lock();
                if let Some(idx) = Self::pick(&st, policy) {
                    if st.queue[idx].ticket == ticket {
                        // Anticipation: the slot was just dropped by a
                        // session whose next request is still in flight.
                        // Hold the claim briefly so that request can
                        // contend. This matters even when the returning
                        // session cannot win the next pick: under the
                        // virtual-clock floor a closed-loop session that
                        // loses its re-queue race forfeits that grant
                        // *permanently* (idle banks no credit), so without
                        // the hold 50-session weight shares drift by
                        // whichever threads the OS happened to delay. On
                        // timeout (session gone, or its thread stalled)
                        // the window closes and the pick stands.
                        if let Some(p) = st.drop_pending {
                            if p != session && !st.queue.iter().any(|w| w.session == p) {
                                let timed_out =
                                    self.cond.wait_for(&mut st, ANTICIPATION_WINDOW).timed_out();
                                if timed_out {
                                    st.drop_pending = None;
                                }
                                continue;
                            }
                        }
                        st.drop_pending = None;
                        st.queue.swap_remove(idx);
                        st.busy = true;
                        st.last_served = Some(session);
                        if let Some(t) = st.trace.as_mut() {
                            t.push(session);
                        }
                        *st.served_ops.entry(session).or_insert(0) += 1;
                        // Catch the session's virtual clock up to the global
                        // one (idle banks no credit) and advance the global
                        // clock to this work's start tag.
                        let floor = st.vclock;
                        let vft = st.vft.entry(session).or_insert(floor);
                        if *vft < floor {
                            *vft = floor;
                        }
                        let start_tag = *vft;
                        st.vclock = st.vclock.max(start_tag);
                        return IssueTurn {
                            sched: self,
                            session,
                        };
                    }
                }
            }
            self.cond.wait(&mut st);
        }
    }

    /// Would the policy rather serve a queued waiter than continue
    /// `session`? Consulted at batch-slice preemption points.
    pub fn should_yield(&self, session: SessionId) -> bool {
        let (my_priority, _) = {
            let qos = self.qos.lock();
            let spec = qos.get(&session).map(|q| q.spec).unwrap_or_default();
            (spec.priority, spec.weight)
        };
        let policy = *self.policy.lock();
        let st = self.state.lock();
        if !st.queue.iter().any(|w| w.session != session) {
            return false;
        }
        match policy {
            // A slice boundary is a fair handoff point whenever anyone else
            // is waiting: FIFO re-admits by arrival order, RR rotates away
            // from the session just served.
            SchedulerPolicy::Fifo | SchedulerPolicy::RoundRobin => true,
            SchedulerPolicy::Priority => st
                .queue
                .iter()
                .any(|w| w.session != session && w.priority < my_priority),
            SchedulerPolicy::Wfq => {
                let my_key = st
                    .vft
                    .get(&session)
                    .copied()
                    .unwrap_or(st.vclock)
                    .max(st.vclock);
                st.queue.iter().any(|w| {
                    w.session != session
                        && st
                            .vft
                            .get(&w.session)
                            .copied()
                            .unwrap_or(st.vclock)
                            .max(st.vclock)
                            < my_key
                })
            }
        }
    }

    /// Index into the queue of the waiter the policy selects next.
    fn pick(st: &State, policy: SchedulerPolicy) -> Option<usize> {
        if st.queue.is_empty() {
            return None;
        }
        let by_ticket = |a: &Waiter, b: &Waiter| a.ticket.cmp(&b.ticket);
        let idx = match policy {
            SchedulerPolicy::Fifo => st
                .queue
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| by_ticket(a, b))
                .map(|(i, _)| i),
            SchedulerPolicy::RoundRobin => {
                // Prefer the oldest waiter from a different session than the
                // one just served; fall back to FIFO.
                let other = st
                    .queue
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| Some(w.session) != st.last_served)
                    .min_by(|(_, a), (_, b)| by_ticket(a, b))
                    .map(|(i, _)| i);
                other.or_else(|| {
                    st.queue
                        .iter()
                        .enumerate()
                        .min_by(|(_, a), (_, b)| by_ticket(a, b))
                        .map(|(i, _)| i)
                })
            }
            SchedulerPolicy::Priority => st
                .queue
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.priority.cmp(&b.priority).then(a.ticket.cmp(&b.ticket)))
                .map(|(i, _)| i),
            SchedulerPolicy::Wfq => {
                // Smallest virtual finish time first, floored at the global
                // clock so idle sessions hold no banked credit; ties break
                // by arrival.
                let key = |w: &Waiter| {
                    st.vft
                        .get(&w.session)
                        .copied()
                        .unwrap_or(st.vclock)
                        .max(st.vclock)
                };
                st.queue
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| key(a).cmp(&key(b)).then(a.ticket.cmp(&b.ticket)))
                    .map(|(i, _)| i)
            }
        };
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_serves_in_arrival_order() {
        let s = Scheduler::new(SchedulerPolicy::Fifo);
        {
            let _turn = s.begin(1);
        }
        {
            let _turn = s.begin(2);
        }
        let served = s.served_ops();
        assert_eq!(served[&1], 1);
        assert_eq!(served[&2], 1);
    }

    #[test]
    fn guard_releases_on_drop() {
        let s = Arc::new(Scheduler::new(SchedulerPolicy::Fifo));
        let turn = s.begin(1);
        let s2 = Arc::clone(&s);
        let waiter = std::thread::spawn(move || {
            let _turn = s2.begin(2);
        });
        // Give the waiter time to queue, then release.
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(turn);
        waiter.join().unwrap();
        assert_eq!(s.served_ops()[&2], 1);
    }

    #[test]
    fn priority_prefers_lower_value() {
        let s = Arc::new(Scheduler::new(SchedulerPolicy::Priority));
        s.set_priority(1, 200);
        s.set_priority(2, 1);
        let gate = s.begin(0); // hold the issue slot while waiters queue
        let mut handles = Vec::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        for sess in [1u32, 2] {
            let s2 = Arc::clone(&s);
            let order2 = Arc::clone(&order);
            handles.push(std::thread::spawn(move || {
                let _t = s2.begin(sess);
                order2.lock().push(sess);
            }));
            // Ensure deterministic queueing order (1 queues first).
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        drop(gate);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), vec![2, 1], "high-priority session 2 first");
    }

    #[test]
    fn round_robin_alternates_sessions() {
        let s = Arc::new(Scheduler::new(SchedulerPolicy::RoundRobin));
        let gate = s.begin(7); // last_served = 7
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        // Queue: 7 again (ticket 1), then 8 (ticket 2). RR should pick 8
        // first because 7 was just served.
        for sess in [7u32, 8] {
            let s2 = Arc::clone(&s);
            let order2 = Arc::clone(&order);
            handles.push(std::thread::spawn(move || {
                let _t = s2.begin(sess);
                std::thread::sleep(std::time::Duration::from_millis(5));
                order2.lock().push(sess);
            }));
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        drop(gate);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), vec![8, 7]);
    }

    #[test]
    fn policy_change_at_runtime() {
        let s = Scheduler::new(SchedulerPolicy::Fifo);
        assert_eq!(s.policy(), SchedulerPolicy::Fifo);
        s.set_policy(SchedulerPolicy::Priority);
        assert_eq!(s.policy(), SchedulerPolicy::Priority);
        assert_eq!(
            SchedulerPolicy::from_i32(1),
            Some(SchedulerPolicy::RoundRobin)
        );
        assert_eq!(SchedulerPolicy::from_i32(3), Some(SchedulerPolicy::Wfq));
        assert_eq!(SchedulerPolicy::from_i32(9), None);
    }

    #[test]
    fn heavy_contention_is_safe_and_counts_all_ops() {
        let s = Arc::new(Scheduler::new(SchedulerPolicy::RoundRobin));
        let mut handles = Vec::new();
        for sess in 0..4u32 {
            let s2 = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let _t = s2.begin(sess);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let served = s.served_ops();
        assert_eq!(served.values().sum::<u64>(), 200);
        assert!(served.values().all(|&v| v == 50));
    }

    #[test]
    fn charge_accumulates_device_time_per_session() {
        let s = Scheduler::new(SchedulerPolicy::Fifo);
        {
            let t = s.begin(1);
            t.charge(10_000);
        }
        {
            let t = s.begin(1);
            t.charge(2_500);
        }
        s.charge(2, 7); // direct charge, outside a turn
        let ns = s.served_ns();
        assert_eq!(ns[&1], 12_500);
        assert_eq!(ns[&2], 7);
    }

    #[test]
    fn forget_drops_all_per_session_state() {
        let s = Scheduler::new(SchedulerPolicy::Priority);
        s.set_priority(9, 3);
        {
            let t = s.begin(9);
            t.charge(1_000);
        }
        assert!(s.knows(9));
        s.forget(9);
        assert!(!s.knows(9));
        assert!(!s.served_ops().contains_key(&9));
        assert!(!s.served_ns().contains_key(&9));
        assert!(s.wfq_vft(9).is_none());
        // Forgetting an unknown session is a no-op.
        s.forget(12345);
    }

    #[test]
    fn config_setters_never_resurrect_forgotten_ledgers() {
        let s = Scheduler::new(SchedulerPolicy::Wfq);
        s.set_weight(9, 4);
        {
            let t = s.begin(9);
            t.charge(1_000);
        }
        s.forget(9);
        assert!(!s.knows(9));
        // Re-arming config for a departed (or never-seen) session stores
        // config only — the served_ops/served_ns/vft ledgers stay empty
        // until the session actually runs again.
        s.set_priority(9, 5);
        s.set_weight(9, 2);
        s.set_priority(424242, 1);
        s.set_weight(424242, 8);
        for sess in [9u32, 424242] {
            assert!(!s.served_ops().contains_key(&sess));
            assert!(!s.served_ns().contains_key(&sess));
            assert!(s.wfq_vft(sess).is_none());
        }
        // The config itself is live: qos_of reflects it.
        assert_eq!(s.qos_of(9).weight, 2);
        assert_eq!(s.qos_of(9).priority, 5);
    }

    #[test]
    fn wfq_prefers_the_session_with_the_smaller_virtual_finish_time() {
        let s = Arc::new(Scheduler::new(SchedulerPolicy::Wfq));
        s.set_weight(1, 1);
        s.set_weight(2, 4);
        // Identical device time charged: session 2's clock ran 4x slower.
        s.charge(1, 10_000);
        s.charge(2, 10_000);
        let gate = s.begin(0); // hold the slot while waiters queue
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for sess in [1u32, 2] {
            let s2 = Arc::clone(&s);
            let order2 = Arc::clone(&order);
            handles.push(std::thread::spawn(move || {
                let _t = s2.begin(sess);
                order2.lock().push(sess);
            }));
            // Session 1 queues first; WFQ must still pick 2.
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        drop(gate);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), vec![2, 1], "lower vft (weight 4) first");
    }

    #[test]
    fn wfq_floors_idle_sessions_at_the_global_clock() {
        let s = Scheduler::new(SchedulerPolicy::Wfq);
        // Session 1 accrues vft; the global clock follows it on its next
        // turn. A newcomer is floored at the clock, not at zero.
        {
            let t = s.begin(1);
            t.charge(50_000);
        }
        {
            let _t = s.begin(1);
        }
        let clock_after = s.wfq_vft(1).unwrap();
        {
            let _t = s.begin(2);
        }
        assert_eq!(
            s.wfq_vft(2),
            Some(clock_after),
            "newcomer starts at the global virtual clock, banking no credit"
        );
    }

    #[test]
    fn token_bucket_rate_limits_and_hints_refill_time() {
        let s = Scheduler::new(SchedulerPolicy::Fifo);
        s.set_qos(
            7,
            QosSpec {
                rate_ns_per_s: 1_000_000_000, // 1 device-ns per wall-ns
                burst_ns: 10_000,
                ..QosSpec::default()
            },
        );
        // Unconfigured sessions are unlimited.
        assert!(s.rate_check(99, 0, u64::MAX).is_ok());
        // The bucket primes full, then runs dry.
        assert!(s.rate_check(7, 0, 10_000).is_ok());
        assert_eq!(s.rate_check(7, 0, 1_000), Err(1_000));
        // Clock advances 5_000ns → 5_000 tokens refill.
        assert!(s.rate_check(7, 5_000, 4_000).is_ok());
        assert_eq!(s.rate_check(7, 5_000, 2_000), Err(1_000));
    }

    #[test]
    fn should_yield_flags_a_more_deserving_waiter() {
        let s = Arc::new(Scheduler::new(SchedulerPolicy::Wfq));
        s.set_weight(1, 1);
        s.set_weight(2, 1);
        let turn = s.begin(1);
        assert!(!turn.should_yield(), "no waiters: keep the slot");
        let s2 = Arc::clone(&s);
        let waiter = std::thread::spawn(move || {
            let _t = s2.begin(2);
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        // Session 1 has consumed device time; session 2 (vft at the clock
        // floor) deserves the slot.
        turn.charge(100_000);
        assert!(turn.should_yield(), "waiter with smaller vft is queued");
        drop(turn);
        waiter.join().unwrap();
        // Under FIFO any other-session waiter requests a handoff; with an
        // empty queue nothing does.
        s.set_policy(SchedulerPolicy::Fifo);
        let turn = s.begin(1);
        assert!(!turn.should_yield());
        drop(turn);
    }

    #[test]
    fn shed_counter_drains_on_take() {
        let s = Scheduler::new(SchedulerPolicy::Fifo);
        assert_eq!(s.take_recent_sheds(), 0);
        s.note_shed();
        s.note_shed();
        assert_eq!(s.take_recent_sheds(), 2);
        assert_eq!(s.take_recent_sheds(), 0);
    }
}
