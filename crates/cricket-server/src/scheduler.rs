//! GPU-sharing scheduler: an arbiter of device *time*, not a device lock.
//!
//! "Our approach allows the flexibility of sharing GPU devices across many
//! unikernels, managing the shared access through configurable schedulers"
//! (paper §5). Under the asynchronous execution engine, API calls no longer
//! hold the device for their full simulated duration — async work enqueues
//! onto per-stream command queues and runs on virtual timelines. What the
//! scheduler arbitrates is the *issue slot*: when several sessions contend,
//! the policy decides whose command is appended to the device next, and the
//! per-session ledger charges each session for the device time its commands
//! occupy. The critical section is the enqueue itself (microseconds of host
//! time), never the device time.

use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;

/// Identifies one client session (one unikernel instance).
pub type SessionId = u32;

/// Arbitration policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerPolicy {
    /// First come, first served (arrival order).
    Fifo,
    /// Rotate between sessions: after serving session S, waiters from
    /// sessions other than S are preferred.
    RoundRobin,
    /// Lowest priority value first (per-session priorities; default 100).
    Priority,
}

impl SchedulerPolicy {
    /// Wire encoding used by `SRV_SET_SCHEDULER`.
    pub fn from_i32(v: i32) -> Option<Self> {
        match v {
            0 => Some(SchedulerPolicy::Fifo),
            1 => Some(SchedulerPolicy::RoundRobin),
            2 => Some(SchedulerPolicy::Priority),
            _ => None,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Waiter {
    session: SessionId,
    ticket: u64,
    priority: u32,
}

#[derive(Debug, Default)]
struct State {
    busy: bool,
    queue: Vec<Waiter>,
    next_ticket: u64,
    last_served: Option<SessionId>,
    /// Issue slots granted per session (telemetry / fairness tests).
    served_ops: HashMap<SessionId, u64>,
    /// Device-time nanoseconds charged per session.
    served_ns: HashMap<SessionId, u64>,
}

/// The scheduler: orders issue slots by policy and keeps the per-session
/// device-time ledger.
pub struct Scheduler {
    policy: Mutex<SchedulerPolicy>,
    state: Mutex<State>,
    cond: Condvar,
    priorities: Mutex<HashMap<SessionId, u32>>,
}

impl Default for Scheduler {
    fn default() -> Self {
        Self::new(SchedulerPolicy::Fifo)
    }
}

/// RAII guard for one issue slot; releasing wakes the next waiter. Hold it
/// only for the enqueue/wait bookkeeping, never for simulated device time.
pub struct IssueTurn<'a> {
    sched: &'a Scheduler,
    session: SessionId,
}

impl IssueTurn<'_> {
    /// Charge `ns` of device time to this turn's session.
    pub fn charge(&self, ns: u64) {
        self.sched.charge(self.session, ns);
    }
}

impl Drop for IssueTurn<'_> {
    fn drop(&mut self) {
        let mut st = self.sched.state.lock();
        st.busy = false;
        drop(st);
        self.sched.cond.notify_all();
    }
}

impl Scheduler {
    /// Create with a policy.
    pub fn new(policy: SchedulerPolicy) -> Self {
        Self {
            policy: Mutex::new(policy),
            state: Mutex::new(State::default()),
            cond: Condvar::new(),
            priorities: Mutex::new(HashMap::new()),
        }
    }

    /// Change the policy at runtime (`SRV_SET_SCHEDULER`).
    pub fn set_policy(&self, policy: SchedulerPolicy) {
        *self.policy.lock() = policy;
        self.cond.notify_all();
    }

    /// Current policy.
    pub fn policy(&self) -> SchedulerPolicy {
        *self.policy.lock()
    }

    /// Set a session's priority (lower = sooner; default 100).
    pub fn set_priority(&self, session: SessionId, priority: u32) {
        self.priorities.lock().insert(session, priority);
    }

    /// Issue slots granted per session so far.
    pub fn served_ops(&self) -> HashMap<SessionId, u64> {
        self.state.lock().served_ops.clone()
    }

    /// Device-time nanoseconds charged per session so far.
    pub fn served_ns(&self) -> HashMap<SessionId, u64> {
        self.state.lock().served_ns.clone()
    }

    /// Charge `ns` of device time to `session`'s ledger.
    pub fn charge(&self, session: SessionId, ns: u64) {
        *self.state.lock().served_ns.entry(session).or_insert(0) += ns;
    }

    /// Drop all per-session state (priority, ledgers) for a released
    /// session. Without this, session churn grows the maps without bound.
    pub fn forget(&self, session: SessionId) {
        self.priorities.lock().remove(&session);
        let mut st = self.state.lock();
        st.served_ops.remove(&session);
        st.served_ns.remove(&session);
        if st.last_served == Some(session) {
            st.last_served = None;
        }
    }

    /// Whether the scheduler still tracks any state for `session`
    /// (regression hook for `forget`).
    pub fn knows(&self, session: SessionId) -> bool {
        if self.priorities.lock().contains_key(&session) {
            return true;
        }
        let st = self.state.lock();
        st.served_ops.contains_key(&session) || st.served_ns.contains_key(&session)
    }

    /// Block until it is `session`'s turn to issue; returns a guard holding
    /// the issue slot.
    pub fn begin(&self, session: SessionId) -> IssueTurn<'_> {
        let priority = self.priorities.lock().get(&session).copied().unwrap_or(100);
        let mut st = self.state.lock();
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queue.push(Waiter {
            session,
            ticket,
            priority,
        });
        loop {
            if !st.busy {
                let policy = *self.policy.lock();
                if let Some(idx) = Self::pick(&st, policy) {
                    if st.queue[idx].ticket == ticket {
                        st.queue.swap_remove(idx);
                        st.busy = true;
                        st.last_served = Some(session);
                        *st.served_ops.entry(session).or_insert(0) += 1;
                        return IssueTurn {
                            sched: self,
                            session,
                        };
                    }
                }
            }
            self.cond.wait(&mut st);
        }
    }

    /// Index into the queue of the waiter the policy selects next.
    fn pick(st: &State, policy: SchedulerPolicy) -> Option<usize> {
        if st.queue.is_empty() {
            return None;
        }
        let by_ticket = |a: &Waiter, b: &Waiter| a.ticket.cmp(&b.ticket);
        let idx = match policy {
            SchedulerPolicy::Fifo => st
                .queue
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| by_ticket(a, b))
                .map(|(i, _)| i),
            SchedulerPolicy::RoundRobin => {
                // Prefer the oldest waiter from a different session than the
                // one just served; fall back to FIFO.
                let other = st
                    .queue
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| Some(w.session) != st.last_served)
                    .min_by(|(_, a), (_, b)| by_ticket(a, b))
                    .map(|(i, _)| i);
                other.or_else(|| {
                    st.queue
                        .iter()
                        .enumerate()
                        .min_by(|(_, a), (_, b)| by_ticket(a, b))
                        .map(|(i, _)| i)
                })
            }
            SchedulerPolicy::Priority => st
                .queue
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.priority.cmp(&b.priority).then(a.ticket.cmp(&b.ticket)))
                .map(|(i, _)| i),
        };
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_serves_in_arrival_order() {
        let s = Scheduler::new(SchedulerPolicy::Fifo);
        {
            let _turn = s.begin(1);
        }
        {
            let _turn = s.begin(2);
        }
        let served = s.served_ops();
        assert_eq!(served[&1], 1);
        assert_eq!(served[&2], 1);
    }

    #[test]
    fn guard_releases_on_drop() {
        let s = Arc::new(Scheduler::new(SchedulerPolicy::Fifo));
        let turn = s.begin(1);
        let s2 = Arc::clone(&s);
        let waiter = std::thread::spawn(move || {
            let _turn = s2.begin(2);
        });
        // Give the waiter time to queue, then release.
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(turn);
        waiter.join().unwrap();
        assert_eq!(s.served_ops()[&2], 1);
    }

    #[test]
    fn priority_prefers_lower_value() {
        let s = Arc::new(Scheduler::new(SchedulerPolicy::Priority));
        s.set_priority(1, 200);
        s.set_priority(2, 1);
        let gate = s.begin(0); // hold the issue slot while waiters queue
        let mut handles = Vec::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        for sess in [1u32, 2] {
            let s2 = Arc::clone(&s);
            let order2 = Arc::clone(&order);
            handles.push(std::thread::spawn(move || {
                let _t = s2.begin(sess);
                order2.lock().push(sess);
            }));
            // Ensure deterministic queueing order (1 queues first).
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        drop(gate);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), vec![2, 1], "high-priority session 2 first");
    }

    #[test]
    fn round_robin_alternates_sessions() {
        let s = Arc::new(Scheduler::new(SchedulerPolicy::RoundRobin));
        let gate = s.begin(7); // last_served = 7
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        // Queue: 7 again (ticket 1), then 8 (ticket 2). RR should pick 8
        // first because 7 was just served.
        for sess in [7u32, 8] {
            let s2 = Arc::clone(&s);
            let order2 = Arc::clone(&order);
            handles.push(std::thread::spawn(move || {
                let _t = s2.begin(sess);
                std::thread::sleep(std::time::Duration::from_millis(5));
                order2.lock().push(sess);
            }));
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        drop(gate);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), vec![8, 7]);
    }

    #[test]
    fn policy_change_at_runtime() {
        let s = Scheduler::new(SchedulerPolicy::Fifo);
        assert_eq!(s.policy(), SchedulerPolicy::Fifo);
        s.set_policy(SchedulerPolicy::Priority);
        assert_eq!(s.policy(), SchedulerPolicy::Priority);
        assert_eq!(
            SchedulerPolicy::from_i32(1),
            Some(SchedulerPolicy::RoundRobin)
        );
        assert_eq!(SchedulerPolicy::from_i32(9), None);
    }

    #[test]
    fn heavy_contention_is_safe_and_counts_all_ops() {
        let s = Arc::new(Scheduler::new(SchedulerPolicy::RoundRobin));
        let mut handles = Vec::new();
        for sess in 0..4u32 {
            let s2 = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let _t = s2.begin(sess);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let served = s.served_ops();
        assert_eq!(served.values().sum::<u64>(), 200);
        assert!(served.values().all(|&v| v == 50));
    }

    #[test]
    fn charge_accumulates_device_time_per_session() {
        let s = Scheduler::new(SchedulerPolicy::Fifo);
        {
            let t = s.begin(1);
            t.charge(10_000);
        }
        {
            let t = s.begin(1);
            t.charge(2_500);
        }
        s.charge(2, 7); // direct charge, outside a turn
        let ns = s.served_ns();
        assert_eq!(ns[&1], 12_500);
        assert_eq!(ns[&2], 7);
    }

    #[test]
    fn forget_drops_all_per_session_state() {
        let s = Scheduler::new(SchedulerPolicy::Priority);
        s.set_priority(9, 3);
        {
            let t = s.begin(9);
            t.charge(1_000);
        }
        assert!(s.knows(9));
        s.forget(9);
        assert!(!s.knows(9));
        assert!(!s.served_ops().contains_key(&9));
        assert!(!s.served_ns().contains_key(&9));
        // Forgetting an unknown session is a no-op.
        s.forget(12345);
    }
}
