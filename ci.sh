#!/usr/bin/env sh
# Local mirror of .github/workflows/ci.yml — run before pushing.
# Everything is offline: dependencies are vendored under shims/.
set -eu

export CARGO_NET_OFFLINE=true

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> chaos: deterministic fault matrix (failing seeds are named in the panic)"
cargo test --test chaos -q
cargo test --test proptest_stack -q -- lossy_fault any_fault
cargo test --test checkpoint_restart -q connection_reset_mid_checkpoint

echo "==> chaos: batch replay (dropped/reset CRICKET_BATCH_EXEC, full seed matrix)"
cargo test --test chaos -q batch
cargo test --test proptest_stack -q record_flush_interleavings

echo "==> bench smoke: smallop (self-asserts >=4x RPC reduction, <5% single-op regression)"
cargo run --release -p cricket-bench --bin smallop -- --launches 1024 --single-iters 128

echo "==> chaos: reactor equivalence (byte-identical reply traces vs pipelined, churn soak)"
cargo test --test reactor -q

echo "==> bench smoke: connscale (reactor >=5x sessions at equal throughput, reduced size)"
cargo run --release -p cricket-bench --bin connscale -- --smoke

echo "==> fleet: portmap shard directory + registration lifecycle + seeded failover matrix"
cargo test --test fleet -q

echo "==> bench smoke: fleet (sharded aggregate throughput scaling, reduced size)"
cargo run --release -p cricket-bench --bin fleet -- --smoke

echo "==> migration: chaos matrix (byte-identical traces), crash-abort, 100-hop soak, concurrent load"
cargo test --test migration -q
cargo test --test proptest_stack -q streaming_deltas

echo "==> bench smoke: migrate (streamed resync <50% of naive bytes at <=25% dirty)"
cargo run --release -p cricket-bench --bin migrate -- --smoke

echo "==> bench smoke: multitenant QoS (WFQ favoritism >=2x, weight shares within 10%, quota shedding)"
cargo run --release -p cricket-bench --bin multitenant -- --qos --smoke

echo "==> wire2: striping + sparse chaos matrix (exactly-once stripes, byte-identical reassembly)"
cargo test --test wire2 -q

echo "==> wire2: sparse codec round-trip properties (arbitrary payloads, corrupt blobs)"
cargo test -p cricket-oncrpc --test proptest_sparse -q

echo "==> wire2: strict no-alloc client (zero heap allocations, construction included)"
cargo test -p cricket-proto --test no_alloc_strict -q

echo "==> bench smoke: fig7 (striping >=1.5x, sparse >=5x at 90% zeros, dense <=1.05x overhead)"
cargo run --release -p cricket-bench --bin fig7_bandwidth -- --smoke

echo "==> example smoke tests (async stream engine; nonzero exit fails CI)"
cargo run --release --example multi_tenant
cargo run --release --example fft_pipeline

echo "CI OK"
