#!/usr/bin/env sh
# Local mirror of .github/workflows/ci.yml — run before pushing.
# Everything is offline: dependencies are vendored under shims/.
set -eu

export CARGO_NET_OFFLINE=true

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "CI OK"
