//! Reproduction of *GPU Acceleration in Unikernels Using Cricket GPU
//! Virtualization* (Eiling et al., SC-W 2023).
//!
//! This umbrella crate re-exports the workspace so the examples and
//! integration tests read naturally. See the README for the architecture
//! overview and DESIGN.md for the per-experiment index.
//!
//! ```
//! use cricket_repro::prelude::*;
//!
//! let (ctx, _setup) = simulated(EnvConfig::RustyHermit);
//! let buf = ctx.upload(&[1.0f32, 2.0, 3.0]).unwrap();
//! assert_eq!(buf.copy_to_vec().unwrap(), vec![1.0, 2.0, 3.0]);
//! ```

pub use cricket_client as client;
pub use cricket_fleet as fleet;
pub use cricket_proto as proto;
pub use cricket_server as server;
pub use oncrpc;
pub use proxy_apps;
pub use rpcl;
pub use simnet;
pub use unikernel;
pub use vgpu;
pub use xdr;

/// The most common imports for applications.
pub mod prelude {
    pub use cricket_client::sim::{simulated, SimSetup};
    pub use cricket_client::{
        ApiStats, ClientError, ClientResult, Context, CricketClient, CubinBuilder, DeviceBuffer,
        Dim3, Endpoint, EnvConfig, Event, Function, Module, ParamBuilder, Placement, Stream,
    };
    pub use cricket_fleet::{
        Fleet, FleetBuilder, MigrateError, MigrationReport, SessionMigration, ShardDirectory,
    };
    pub use cricket_server::{ReactorConfig, ServeMode, ServerBuilder};
    pub use proxy_apps::{bandwidth, histogram, linear_solver, matrix_mul};
}
