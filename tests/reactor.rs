//! Reactor-mode integration: the completion-driven server must be
//! observationally identical to the pipelined thread-per-connection path —
//! byte-identical reply streams under the full chaos seed matrix, including
//! mid-batch reset replay — and must survive heavy connection churn without
//! leaking scheduler sessions, replay-cache entries, or reply buffers.

// These tests deliberately exercise the deprecated pre-builder entry
// points: they are contractually one-line shims over `ServerBuilder`
// and must keep working byte-identically.
#![allow(deprecated)]

use cricket_repro::oncrpc::server::ServerHandle;
use cricket_repro::oncrpc::{
    serve_tcp_reactor, telemetry, transport::Transport, ConnHandler, ReactorConfig, RpcResult,
};
use cricket_repro::oncrpc::{
    Fault, FaultConfig, FaultPlan, FaultyTransport, OpaqueAuth, ReplayCache, RetryPolicy,
    SharedFaultPlan, TcpTransport,
};
use cricket_repro::prelude::*;
use cricket_repro::server::{
    cricket_classifier, make_rpc_server, serve_tcp_sessions_mode, CricketServer, ServeMode,
};
use std::io::{Read, Write};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The same fixed fault matrix `ci.sh chaos` runs (see `tests/chaos.rs`).
const CI_SEEDS: [u64; 6] = [1, 7, 42, 0xC41C_4E71, 0xDEAD_BEEF, 20_230_915];

const REACTOR: ServeMode = ServeMode::Reactor { workers: 2 };

/// A transport shim *under* the fault injector that appends every byte the
/// server actually put on the wire to a shared log. The log outlives any
/// single connection (reconnects keep appending), so two runs of the same
/// workload can be compared as one reply byte stream per mode.
struct Recorder {
    inner: TcpTransport,
    log: Arc<Mutex<Vec<u8>>>,
}

impl Read for Recorder {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.log
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend_from_slice(&buf[..n]);
        Ok(n)
    }
}

impl Write for Recorder {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.inner.write(buf)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

impl Transport for Recorder {
    fn describe(&self) -> String {
        "recorder(tcp)".into()
    }
    fn set_read_timeout(&mut self, dur: Option<Duration>) -> RpcResult<()> {
        TcpTransport::set_read_timeout(&self.inner, dur)
    }
}

/// A TCP server in `mode` where every connection shares **one** session
/// (session 0, no per-connection release) — the same session model as the
/// in-process chaos harness. Reconnect-inducing faults (resets, framing
/// truncations) must not invalidate earlier allocations here, because the
/// equivalence runs hold device pointers across the whole fault schedule;
/// per-connection session release is exercised separately by the churn
/// soak and by `tests/chaos.rs`.
fn spawn_shared_session_server(mode: ServeMode) -> (ServerHandle, Arc<ReplayCache>) {
    let server = CricketServer::a100();
    let rpc = make_rpc_server(server);
    let replay = Arc::new(ReplayCache::default());
    rpc.set_replay_cache(Arc::clone(&replay));
    let handle =
        match mode {
            ServeMode::Reactor { workers } => serve_tcp_reactor(
                "127.0.0.1:0",
                ReactorConfig {
                    workers,
                    classify: Some(cricket_classifier()),
                    ..ReactorConfig::default()
                },
                move |_conn| ConnHandler {
                    rpc: Arc::clone(&rpc),
                    on_close: None,
                },
            )
            .unwrap(),
            _ => cricket_repro::oncrpc::server::serve_tcp_with("127.0.0.1:0", move |mut conn| {
                match conn.try_clone() {
                    Ok(writer) => {
                        let _ = rpc.serve_pipelined(&mut conn, writer);
                    }
                    Err(_) => {
                        let _ = rpc.serve_connection(&mut conn);
                    }
                }
            })
            .unwrap(),
        };
    (handle, replay)
}

/// Dial `addr` through recorder + fault injector.
fn dial(
    addr: &str,
    log: &Arc<Mutex<Vec<u8>>>,
    plan: &SharedFaultPlan,
) -> RpcResult<Box<dyn Transport>> {
    Ok(Box::new(FaultyTransport::new(
        Box::new(Recorder {
            inner: TcpTransport::connect(addr)?,
            log: Arc::clone(log),
        }),
        Arc::clone(plan),
    )))
}

/// A hardened chaos client over TCP whose incoming bytes are recorded:
/// client token for at-most-once dedupe, capped retries, a generous
/// per-call deadline (localhost round trips are microseconds; the deadline
/// only fires when a reply was really dropped), and a reconnector that
/// continues the same fault schedule *and* the same reply log.
fn traced_client(addr: &str, log: &Arc<Mutex<Vec<u8>>>, plan: &SharedFaultPlan) -> CricketClient {
    let mut client = CricketClient::new(
        dial(addr, log, plan).unwrap(),
        cricket_repro::client::env::ClientFlavor::RustRpcLib,
        None,
    );
    let rpc = client.rpc();
    rpc.set_credential(OpaqueAuth::client_token(0xC11E_0003));
    rpc.set_retry_policy(RetryPolicy {
        max_attempts: 8,
        base_delay: Duration::from_micros(200),
        max_delay: Duration::from_millis(5),
        retry_non_idempotent: true,
    });
    rpc.set_call_timeout(Some(Duration::from_millis(150)))
        .unwrap();
    let dial_addr = addr.to_string();
    let log2 = Arc::clone(log);
    let plan2 = Arc::clone(plan);
    rpc.set_reconnect(move || dial(&dial_addr, &log2, &plan2));
    client
}

/// Run the chaos-matrix GPU workload (same shape as
/// `tests/chaos.rs::run_seeded_workload`) against a fresh TCP server in
/// `mode` while `seed`'s schedule mangles the wire. Returns the rendered
/// fault-decision trace and the raw reply byte stream.
fn run_traced(mode: ServeMode, seed: u64) -> (String, Vec<u8>) {
    let (handle, _replay) = spawn_shared_session_server(mode);
    let addr = handle.addr().to_string();
    let plan = FaultPlan::from_seed_with(seed, FaultConfig::lossy()).into_shared();
    let log = Arc::new(Mutex::new(Vec::new()));
    let mut client = traced_client(&addr, &log, &plan);

    let baseline = client.mem_get_info().unwrap().free;
    let mut ptrs: Vec<(u64, Vec<u8>)> = Vec::new();
    for i in 0..6u8 {
        let ptr = client.malloc(4096).unwrap();
        assert!(
            ptrs.iter().all(|(p, _)| *p != ptr),
            "seed {seed}: duplicate pointer {ptr:#x} — a malloc executed twice"
        );
        let pattern: Vec<u8> = (0..128u32).map(|b| (b as u8).wrapping_mul(i + 1)).collect();
        client.memcpy_htod(ptr, &pattern).unwrap();
        ptrs.push((ptr, pattern));
    }
    assert_eq!(client.device_count().unwrap(), 4, "seed {seed}");
    for (ptr, pattern) in &ptrs {
        assert_eq!(
            &client.memcpy_dtoh(*ptr, 128).unwrap(),
            pattern,
            "seed {seed}: readback corrupted"
        );
    }
    for (ptr, _) in &ptrs {
        client.free(*ptr).unwrap();
    }
    assert_eq!(
        client.mem_get_info().unwrap().free,
        baseline,
        "seed {seed}: leaked server allocation"
    );
    drop(client);
    handle.shutdown();
    let bytes = log.lock().unwrap_or_else(|e| e.into_inner()).clone();
    let trace = plan.lock().trace_string();
    (trace, bytes)
}

/// Acceptance criterion: across the full CI seed matrix, the reactor path
/// is byte-for-byte indistinguishable from the pipelined path — the same
/// fault schedule produces the same reply stream (same xids, same framing,
/// same payloads, same retransmissions served from the replay cache).
#[test]
fn reactor_reply_traces_match_pipelined_across_seed_matrix() {
    for seed in CI_SEEDS {
        let outcome = std::panic::catch_unwind(|| {
            let (trace_p, bytes_p) = run_traced(ServeMode::Pipelined, seed);
            let (trace_r, bytes_r) = run_traced(REACTOR, seed);
            assert_eq!(
                trace_p, trace_r,
                "seed {seed}: fault schedules diverged — client behaved differently"
            );
            assert!(!bytes_p.is_empty(), "seed {seed}: nothing recorded");
            assert_eq!(
                bytes_p, bytes_r,
                "seed {seed}: reply byte streams diverged between pipelined and reactor"
            );
        });
        if let Err(cause) = outcome {
            let msg = cause
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| cause.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!(
                "reactor equivalence failed at seed {seed} \
                 (replay with FaultPlan::from_seed({seed})): {msg}"
            );
        }
    }
}

/// Mid-batch drop replay (the TCP analogue of
/// `dropped_batch_reply_is_replayed_with_identical_status_vector`): the
/// coalesced batch's reply dies on the wire, the retransmission is served
/// from the replay cache with the identical status vector, and the typed
/// error names the same failing sub-op — run in `mode`, traced.
fn run_batch_drop(mode: ServeMode) -> (String, Vec<u8>) {
    let (handle, replay) = spawn_shared_session_server(mode);
    let addr = handle.addr().to_string();
    // Events alternate request/reply: malloc is 0/1, the CRICKET_BATCH_EXEC
    // flush is 2/3 — drop the batch *reply*.
    let plan = FaultPlan::scripted(vec![(3, Fault::DropReply)]).into_shared();
    let log = Arc::new(Mutex::new(Vec::new()));
    let mut client = traced_client(&addr, &log, &plan);
    client.enable_batching();

    let ptr = client.malloc(4096).unwrap();
    client.memset(ptr, 1, 64).unwrap(); // sub-op 0: executes
    client.memset(0xdead_beef_0000, 2, 8).unwrap(); // sub-op 1: fails
    client.memset(ptr + 64, 3, 64).unwrap(); // sub-op 2: skipped
    let err = client.flush_batch().unwrap_err();
    match err {
        ClientError::Batch { api, index, code } => {
            assert_eq!(api, "cudaMemset");
            assert_eq!(index, 1, "cached status vector named a different sub-op");
            assert_ne!(code, 0);
        }
        other => panic!("expected a typed batch error, got {other}"),
    }
    assert!(client.rpc().stats().retries >= 1);
    assert!(
        replay.stats().hits >= 1,
        "batch retransmission bypassed the replay cache: {:?}",
        replay.stats()
    );
    // Exactly-once, observable in device memory.
    let back = client.memcpy_dtoh(ptr, 128).unwrap();
    assert_eq!(&back[..64], &[1u8; 64][..]);
    assert_eq!(&back[64..], &[0u8; 64][..], "skipped sub-op executed");
    client.free(ptr).unwrap();
    drop(client);
    handle.shutdown();
    let bytes = log.lock().unwrap_or_else(|e| e.into_inner()).clone();
    let trace = plan.lock().trace_string();
    (trace, bytes)
}

/// Mid-batch reset replay (the TCP analogue of
/// `reset_batch_request_executes_exactly_once_after_reconnect`): the
/// connection resets while the batch request itself is in flight, the
/// client reconnects and retransmits, and the batch executes exactly once.
fn run_batch_reset(mode: ServeMode) -> (String, Vec<u8>) {
    let (handle, _replay) = spawn_shared_session_server(mode);
    let addr = handle.addr().to_string();
    // Event 2 is the batch *request* record (malloc is events 0/1).
    let plan = FaultPlan::scripted(vec![(2, Fault::ResetOnSend)]).into_shared();
    let log = Arc::new(Mutex::new(Vec::new()));
    let mut client = traced_client(&addr, &log, &plan);
    client.enable_batching();

    let ptr = client.malloc(4096).unwrap();
    for i in 0..8u64 {
        client.memset(ptr + i * 8, i as i32, 8).unwrap();
    }
    client.flush_batch().unwrap();
    assert_eq!(client.rpc().stats().reconnects, 1);
    let back = client.memcpy_dtoh(ptr, 64).unwrap();
    for i in 0..8usize {
        assert_eq!(&back[i * 8..(i + 1) * 8], &[i as u8; 8][..]);
    }
    client.free(ptr).unwrap();
    drop(client);
    handle.shutdown();
    let bytes = log.lock().unwrap_or_else(|e| e.into_inner()).clone();
    let trace = plan.lock().trace_string();
    (trace, bytes)
}

/// The mid-batch fault scenarios hold in reactor mode with reply streams
/// byte-identical to the pipelined path — batches park on worker shards,
/// yet replay, reconnect, and status-vector semantics are unchanged.
#[test]
fn reactor_mid_batch_drop_and_reset_match_pipelined() {
    let (trace_p, bytes_p) = run_batch_drop(ServeMode::Pipelined);
    let (trace_r, bytes_r) = run_batch_drop(REACTOR);
    assert_eq!(trace_p, trace_r, "batch-drop fault schedules diverged");
    assert_eq!(bytes_p, bytes_r, "batch-drop reply streams diverged");

    let (trace_p, bytes_p) = run_batch_reset(ServeMode::Pipelined);
    let (trace_r, bytes_r) = run_batch_reset(REACTOR);
    assert_eq!(trace_p, trace_r, "batch-reset fault schedules diverged");
    assert_eq!(bytes_p, bytes_r, "batch-reset reply streams diverged");
}

/// Connection-churn soak: 500 sessions opened and closed through the
/// reactor — half of them vanishing with memory still allocated — must
/// leave zero scheduler sessions behind, reclaim every allocation, keep
/// the replay cache inside its per-client window, and recycle pooled
/// reply buffers instead of allocating per call.
#[test]
fn reactor_churn_soak_releases_all_sessions() {
    const THREADS: usize = 10;
    const CONNS_PER_THREAD: usize = 50;
    const TOTAL: usize = THREADS * CONNS_PER_THREAD;

    let server = CricketServer::a100();
    let (handle, replay) =
        serve_tcp_sessions_mode(Arc::clone(&server), "127.0.0.1:0", REACTOR).unwrap();
    let addr = handle.addr().to_string();
    let bufs0 = telemetry::reactor_snapshot();

    // The probe is connection 1 (session 1); churned sessions are 2..=TOTAL+1.
    let mut probe = CricketClient::new(
        Box::new(TcpTransport::connect(&addr).unwrap()),
        cricket_repro::client::env::ClientFlavor::RustRpcLib,
        None,
    );
    let baseline = probe.mem_get_info().unwrap().free;

    let mut joins = Vec::new();
    for t in 0..THREADS {
        let addr = addr.clone();
        joins.push(std::thread::spawn(move || {
            for c in 0..CONNS_PER_THREAD {
                let mut client = CricketClient::new(
                    Box::new(TcpTransport::connect(&addr).unwrap()),
                    cricket_repro::client::env::ClientFlavor::RustRpcLib,
                    None,
                );
                client.rpc().set_credential(OpaqueAuth::client_token(
                    0x50_0000 + (t * CONNS_PER_THREAD + c) as u64,
                ));
                let ptr = client.malloc(8192).unwrap();
                client.memcpy_htod(ptr, &[0xAB; 64]).unwrap();
                assert_eq!(client.memcpy_dtoh(ptr, 64).unwrap(), vec![0xAB; 64]);
                assert_eq!(client.device_count().unwrap(), 4);
                client.free(ptr).unwrap();
                // Half the connections vanish with memory still held:
                // the reactor's close hook must reclaim it.
                if c % 2 == 0 {
                    let _leak = client.malloc(4096).unwrap();
                }
                drop(client);
            }
        }));
    }
    for j in joins {
        j.join().expect("churn thread panicked");
    }

    // Zero leaked scheduler sessions: every churned session is forgotten
    // once its connection finalizes (close hooks run after the last
    // in-flight call completed, so poll briefly).
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let leaked: Vec<u32> = (2..=(TOTAL + 1) as u32)
            .filter(|s| server.scheduler.knows(*s))
            .collect();
        if leaked.is_empty() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "leaked scheduler sessions after churn: {leaked:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Every vanished session's memory came back.
    loop {
        if probe.mem_get_info().unwrap().free == baseline {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "server never reclaimed churned sessions' memory"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Replay cache stays inside the per-client window even through the
    // reactor's out-of-order completion path: one client hammering 200
    // non-idempotent calls keeps at most DEFAULT_REPLAY_WINDOW entries.
    let mut burst = CricketClient::new(
        Box::new(TcpTransport::connect(&addr).unwrap()),
        cricket_repro::client::env::ClientFlavor::RustRpcLib,
        None,
    );
    burst
        .rpc()
        .set_credential(OpaqueAuth::client_token(0xB125_7000));
    let before = replay.stats();
    for _ in 0..100 {
        let p = burst.malloc(1024).unwrap();
        burst.free(p).unwrap();
    }
    let after = replay.stats();
    let stored = after.stores - before.stores;
    let evicted = after.evictions - before.evictions;
    assert!(stored >= 200, "burst calls not cached: {stored}");
    assert!(
        evicted
            >= stored.saturating_sub(cricket_repro::oncrpc::replay::DEFAULT_REPLAY_WINDOW as u64),
        "replay cache grew unboundedly through the reactor: stored {stored}, evicted {evicted}"
    );

    // Pooled buffers are recycled, not allocated per call: across ~3000
    // RPCs the pool serves far more buffers than it allocates.
    let bufs = telemetry::reactor_snapshot().since(&bufs0);
    assert!(
        bufs.bufs_reused > bufs.bufs_allocated,
        "reply/record pool not recycling: {bufs:?}"
    );

    drop(probe);
    drop(burst);
    handle.shutdown();
}
