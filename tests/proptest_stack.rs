//! Property-based integration tests over the full stack: arbitrary
//! payloads and allocation patterns must round-trip through XDR → record
//! marking → guest TCP/virtio → server → device memory, in every
//! environment, at every fragment size.

use cricket_repro::prelude::*;
use proptest::prelude::*;

fn env_strategy() -> impl Strategy<Value = EnvConfig> {
    prop_oneof![
        Just(EnvConfig::RustNative),
        Just(EnvConfig::CNative),
        Just(EnvConfig::LinuxVm),
        Just(EnvConfig::Unikraft),
        Just(EnvConfig::RustyHermit),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn memcpy_roundtrip_any_payload(
        env in env_strategy(),
        data in proptest::collection::vec(any::<u8>(), 1..200_000),
    ) {
        let (ctx, _s) = simulated(env);
        let buf = ctx.upload(&data).unwrap();
        prop_assert_eq!(buf.copy_to_vec().unwrap(), data);
    }

    #[test]
    fn memcpy_roundtrip_any_fragment_size(
        frag in 16usize..100_000,
        data in proptest::collection::vec(any::<u8>(), 1..100_000),
    ) {
        let setup = SimSetup::new();
        let mut client = setup.client(EnvConfig::RustyHermit);
        client.set_max_fragment(frag);
        let ptr = client.malloc(data.len() as u64).unwrap();
        client.memcpy_htod(ptr, &data).unwrap();
        prop_assert_eq!(client.memcpy_dtoh(ptr, data.len() as u64).unwrap(), data);
        client.free(ptr).unwrap();
    }

    #[test]
    fn alloc_free_sequences_never_corrupt(
        sizes in proptest::collection::vec(1u64..1_000_000, 1..24),
    ) {
        let (ctx, _s) = simulated(EnvConfig::Unikraft);
        // Allocate all, write a signature into each, verify all, drop all.
        let bufs: Vec<_> = sizes
            .iter()
            .map(|&s| ctx.alloc::<u8>(s as usize).unwrap())
            .collect();
        for (i, b) in bufs.iter().enumerate() {
            let sig = vec![(i % 251) as u8; b.len().min(64)];
            ctx.with_raw(|r| r.memcpy_htod(b.ptr(), &sig)).unwrap();
        }
        for (i, b) in bufs.iter().enumerate() {
            let sig = ctx
                .with_raw(|r| r.memcpy_dtoh(b.ptr(), b.len().min(64) as u64))
                .unwrap();
            prop_assert!(sig.iter().all(|&v| v == (i % 251) as u8));
        }
    }

    #[test]
    fn f64_values_cross_the_wire_bit_exact(
        values in proptest::collection::vec(any::<f64>(), 1..500),
    ) {
        let (ctx, _s) = simulated(EnvConfig::RustyHermit);
        let buf = ctx.upload(&values).unwrap();
        let back = buf.copy_to_vec().unwrap();
        prop_assert_eq!(
            back.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            values.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn interior_offsets_read_back(
        base_len in 64usize..4096,
        offset in 0usize..63,
    ) {
        let (ctx, _s) = simulated(EnvConfig::RustNative);
        let data: Vec<u8> = (0..base_len).map(|i| (i % 241) as u8).collect();
        let buf = ctx.upload(&data).unwrap();
        let tail = ctx
            .with_raw(|r| r.memcpy_dtoh(buf.ptr() + offset as u64, (base_len - offset) as u64))
            .unwrap();
        prop_assert_eq!(&tail[..], &data[offset..]);
    }
}
