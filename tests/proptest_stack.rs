//! Property-based integration tests over the full stack: arbitrary
//! payloads and allocation patterns must round-trip through XDR → record
//! marking → guest TCP/virtio → server → device memory, in every
//! environment, at every fragment size — and, under proptest-generated
//! fault schedules, every call must return the correct result or a typed
//! error, never a wrong result, a panic, or a leaked server allocation.

use cricket_repro::oncrpc::{
    FaultConfig, FaultPlan, FaultyTransport, OpaqueAuth, ReplayCache, RetryPolicy, SharedFaultPlan,
};
use cricket_repro::prelude::*;
use cricket_repro::server::SimTransport;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Same resilience wiring as `tests/chaos.rs`: client token for
/// at-most-once dedupe, capped-backoff retries, a short per-call deadline,
/// and a reconnector continuing the same fault schedule.
fn harden_chaos(
    client: &mut CricketClient,
    setup: &SimSetup,
    env: EnvConfig,
    plan: &SharedFaultPlan,
) {
    let rpc_srv = Arc::clone(&setup.rpc);
    let clock = Arc::clone(&setup.clock);
    let plan2 = Arc::clone(plan);
    let rpc = client.rpc();
    rpc.set_credential(OpaqueAuth::client_token(0x9999_0042));
    rpc.set_retry_policy(RetryPolicy {
        max_attempts: 20,
        base_delay: Duration::from_micros(50),
        max_delay: Duration::from_millis(1),
        retry_non_idempotent: true,
    });
    rpc.set_call_timeout(Some(Duration::from_millis(40)))
        .unwrap();
    rpc.set_reconnect(move || {
        let fresh = SimTransport::new(Arc::clone(&rpc_srv), env.guest(), Arc::clone(&clock));
        Ok(Box::new(FaultyTransport::new(
            Box::new(fresh),
            Arc::clone(&plan2),
        )))
    });
}

fn env_strategy() -> impl Strategy<Value = EnvConfig> {
    prop_oneof![
        Just(EnvConfig::RustNative),
        Just(EnvConfig::CNative),
        Just(EnvConfig::LinuxVm),
        Just(EnvConfig::Unikraft),
        Just(EnvConfig::RustyHermit),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn memcpy_roundtrip_any_payload(
        env in env_strategy(),
        data in proptest::collection::vec(any::<u8>(), 1..200_000),
    ) {
        let (ctx, _s) = simulated(env);
        let buf = ctx.upload(&data).unwrap();
        prop_assert_eq!(buf.copy_to_vec().unwrap(), data);
    }

    #[test]
    fn memcpy_roundtrip_any_fragment_size(
        frag in 16usize..100_000,
        data in proptest::collection::vec(any::<u8>(), 1..100_000),
    ) {
        let setup = SimSetup::new();
        let mut client = setup.client(EnvConfig::RustyHermit);
        client.set_max_fragment(frag);
        let ptr = client.malloc(data.len() as u64).unwrap();
        client.memcpy_htod(ptr, &data).unwrap();
        prop_assert_eq!(client.memcpy_dtoh(ptr, data.len() as u64).unwrap(), data);
        client.free(ptr).unwrap();
    }

    #[test]
    fn alloc_free_sequences_never_corrupt(
        sizes in proptest::collection::vec(1u64..1_000_000, 1..24),
    ) {
        let (ctx, _s) = simulated(EnvConfig::Unikraft);
        // Allocate all, write a signature into each, verify all, drop all.
        let bufs: Vec<_> = sizes
            .iter()
            .map(|&s| ctx.alloc::<u8>(s as usize).unwrap())
            .collect();
        for (i, b) in bufs.iter().enumerate() {
            let sig = vec![(i % 251) as u8; b.len().min(64)];
            ctx.with_raw(|r| r.memcpy_htod(b.ptr(), &sig)).unwrap();
        }
        for (i, b) in bufs.iter().enumerate() {
            let sig = ctx
                .with_raw(|r| r.memcpy_dtoh(b.ptr(), b.len().min(64) as u64))
                .unwrap();
            prop_assert!(sig.iter().all(|&v| v == (i % 251) as u8));
        }
    }

    #[test]
    fn f64_values_cross_the_wire_bit_exact(
        values in proptest::collection::vec(any::<f64>(), 1..500),
    ) {
        let (ctx, _s) = simulated(EnvConfig::RustyHermit);
        let buf = ctx.upload(&values).unwrap();
        let back = buf.copy_to_vec().unwrap();
        prop_assert_eq!(
            back.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            values.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn interior_offsets_read_back(
        base_len in 64usize..4096,
        offset in 0usize..63,
    ) {
        let (ctx, _s) = simulated(EnvConfig::RustNative);
        let data: Vec<u8> = (0..base_len).map(|i| (i % 241) as u8).collect();
        let buf = ctx.upload(&data).unwrap();
        let tail = ctx
            .with_raw(|r| r.memcpy_dtoh(buf.ptr() + offset as u64, (base_len - offset) as u64))
            .unwrap();
        prop_assert_eq!(&tail[..], &data[offset..]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Under any seeded *lossy* schedule (resets, drops, delays,
    /// duplicates, truncations — every fault the stack can detect or
    /// mask), a hardened client completes every call with the correct
    /// result and the server leaks nothing.
    #[test]
    fn lossy_fault_schedules_never_corrupt_results_or_leak(
        seed in any::<u64>(),
        env in env_strategy(),
        sizes in proptest::collection::vec(64u64..65_536, 1..5),
    ) {
        let setup = SimSetup::new();
        let replay = Arc::new(ReplayCache::default());
        setup.rpc.set_replay_cache(Arc::clone(&replay));
        let plan = FaultPlan::from_seed_with(seed, FaultConfig::lossy()).into_shared();
        let mut client = setup.chaos_client(env, &plan);
        harden_chaos(&mut client, &setup, env, &plan);

        let baseline = client.mem_get_info().unwrap().free;
        for (i, &size) in sizes.iter().enumerate() {
            let ptr = client.malloc(size).unwrap();
            let pat = vec![(i as u8).wrapping_mul(31).wrapping_add(7); 48];
            client.memcpy_htod(ptr, &pat).unwrap();
            prop_assert_eq!(
                client.memcpy_dtoh(ptr, 48).unwrap(), pat,
                "seed {} corrupted a readback", seed
            );
            client.free(ptr).unwrap();
        }
        prop_assert_eq!(
            client.mem_get_info().unwrap().free, baseline,
            "seed {} leaked a server allocation", seed
        );
    }

    /// Under the *full* fault mix — including payload corruption, which
    /// RPC/XDR cannot detect — every call still returns a typed `Result`:
    /// no panic, no hang (per-call deadlines and the retry cap bound every
    /// outcome).
    #[test]
    fn any_fault_schedule_yields_typed_outcomes_never_panics(
        seed in any::<u64>(),
        env in env_strategy(),
    ) {
        let setup = SimSetup::new();
        let replay = Arc::new(ReplayCache::default());
        setup.rpc.set_replay_cache(Arc::clone(&replay));
        let plan = FaultPlan::from_seed(seed).into_shared();
        let mut client = setup.chaos_client(env, &plan);
        harden_chaos(&mut client, &setup, env, &plan);

        let mut live = Vec::new();
        for _ in 0..6 {
            if let Ok(ptr) = client.malloc(4096) {
                live.push(ptr);
            }
        }
        let _ = client.device_count();
        for ptr in live {
            let _ = client.free(ptr);
        }
        // Reaching here is the property: every outcome above was a typed
        // `Result`, bounded in time by deadlines and the retry cap.
    }
}

/// One step in a migration dirty-tracking interleaving.
#[derive(Debug, Clone, Copy)]
enum MemOp {
    /// Allocate `(n + 1) * 64` bytes.
    Alloc(u16),
    /// Free a live block chosen by index.
    Free(u8),
    /// Write a short byte run at an offset inside a live block.
    Write(u8, u16, u8),
    /// Memset a short span inside a live block.
    Memset(u8, u16, u8),
    /// A migration pre-copy round: export the delta since the last epoch,
    /// mark a new epoch on the source, apply the delta on the replica.
    Sync,
}

fn mem_op_strategy() -> impl Strategy<Value = MemOp> {
    prop_oneof![
        (0u16..512).prop_map(MemOp::Alloc),
        any::<u8>().prop_map(MemOp::Free),
        (any::<u8>(), any::<u16>(), any::<u8>()).prop_map(|(b, o, v)| MemOp::Write(b, o, v)),
        (any::<u8>(), any::<u16>(), any::<u8>()).prop_map(|(b, o, v)| MemOp::Memset(b, o, v)),
        Just(MemOp::Sync),
    ]
}

/// One streaming round, exactly as `mig_export`/`mig_apply` do it: delta
/// against the driver's known-block set, epoch the source, update the
/// known set, replay on the replica.
fn mem_sync(
    src: &mut cricket_repro::vgpu::memory::MemoryManager,
    dst: &mut cricket_repro::vgpu::memory::MemoryManager,
    known: &mut std::collections::BTreeSet<u64>,
) -> cricket_repro::vgpu::VgpuResult<()> {
    let delta = src.delta_since(known);
    src.mark_epoch();
    for b in &delta.freed {
        known.remove(b);
    }
    for (b, _) in &delta.new_blocks {
        known.insert(*b);
    }
    dst.apply_delta(&delta)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole's memory-correctness property: for ANY interleaving of
    /// allocs, frees, writes, memsets, and epoch boundaries, a replica
    /// built from the base snapshot plus every dirty delta is byte-
    /// identical to the source — live blocks, their contents, and the
    /// free-space accounting all match.
    #[test]
    fn streaming_deltas_reproduce_source_memory(
        ops in prop::collection::vec(mem_op_strategy(), 1..48),
    ) {
        use cricket_repro::vgpu::memory::MemoryManager;
        let mut src = MemoryManager::new(1 << 22);
        let mut dst = MemoryManager::new(1 << 22);
        let mut known = std::collections::BTreeSet::new();
        let mut live: Vec<(u64, u64)> = Vec::new();

        for op in ops {
            match op {
                MemOp::Alloc(n) => {
                    let size = (u64::from(n) + 1) * 64;
                    if let Ok(p) = src.alloc(size) {
                        live.push((p, size));
                    }
                }
                MemOp::Free(sel) => {
                    if !live.is_empty() {
                        let (p, _) = live.remove(usize::from(sel) % live.len());
                        src.free(p).unwrap();
                    }
                }
                MemOp::Write(sel, seed, val) => {
                    if !live.is_empty() {
                        let (p, size) = live[usize::from(sel) % live.len()];
                        let off = u64::from(seed) % size;
                        let len = (size - off).min(97);
                        let bytes: Vec<u8> =
                            (0..len).map(|i| val.wrapping_add(i as u8)).collect();
                        src.write(p + off, &bytes).unwrap();
                    }
                }
                MemOp::Memset(sel, seed, val) => {
                    if !live.is_empty() {
                        let (p, size) = live[usize::from(sel) % live.len()];
                        let off = u64::from(seed) % size;
                        src.memset(p + off, val, (size - off).min(129)).unwrap();
                    }
                }
                MemOp::Sync => prop_assert!(mem_sync(&mut src, &mut dst, &mut known).is_ok()),
            }
        }
        // The cutover's final fenced delta.
        prop_assert!(mem_sync(&mut src, &mut dst, &mut known).is_ok());

        let s: Vec<(u64, u64)> = src.live_allocations().collect();
        let d: Vec<(u64, u64)> = dst.live_allocations().collect();
        prop_assert_eq!(&s, &d, "replica's live-block map diverged");
        for (base, _) in s {
            prop_assert_eq!(
                src.block_bytes(base).unwrap(),
                dst.block_bytes(base).unwrap(),
                "replica's bytes diverged in block {:#x}", base
            );
        }
        prop_assert_eq!(src.free_bytes(), dst.free_bytes(),
            "replica's free-space accounting diverged");
    }
}

/// One client-visible async op for the coalescing-order property.
#[derive(Debug, Clone, Copy)]
enum AsyncOp {
    Memset,
    SmallHtod,
    Dtod,
}

/// Replay `ops` (flushing after an op where `flush` says so), then return
/// the device's retired-command log and the final buffer contents.
fn run_async_ops(
    ops: &[(AsyncOp, bool)],
    policy: Option<cricket_repro::client::BatchPolicy>,
) -> (Vec<(u64, String)>, Vec<u8>) {
    let setup = SimSetup::new();
    let mut client = setup.client(EnvConfig::RustyHermit);
    if let Some(p) = policy {
        client.enable_batching_with(p);
    }
    let ptr = client.malloc(4096).unwrap();
    for (i, (op, flush)) in ops.iter().enumerate() {
        let off = (i as u64 % 16) * 64;
        match op {
            AsyncOp::Memset => client.memset(ptr + off, i as i32 + 1, 64).unwrap(),
            AsyncOp::SmallHtod => {
                let pattern: Vec<u8> = (0..64u32)
                    .map(|b| (b as u8).wrapping_add(i as u8))
                    .collect();
                client.memcpy_htod(ptr + off, &pattern).unwrap();
            }
            AsyncOp::Dtod => client.memcpy_dtod(ptr + 2048 + off, ptr + off, 64).unwrap(),
        }
        if *flush {
            client.flush_batch().unwrap();
        }
    }
    client.device_synchronize().unwrap();
    let retired = setup
        .server
        .drain_retired(0)
        .into_iter()
        .map(|r| (r.stream, format!("{:?}", r.kind)))
        .collect();
    let mem = client.memcpy_dtoh(ptr, 4096).unwrap();
    client.free(ptr).unwrap();
    (retired, mem)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Coalescing is transparent: for ANY interleaving of recorded ops and
    /// explicit flushes, under ANY watermark, the device retires the same
    /// commands in the same order as eager (unbatched) submission, and the
    /// final device memory is byte-identical.
    #[test]
    fn record_flush_interleavings_retire_in_program_order(
        ops in prop::collection::vec(
            (prop_oneof![
                Just(AsyncOp::Memset),
                Just(AsyncOp::SmallHtod),
                Just(AsyncOp::Dtod),
            ], any::<bool>()),
            1..32,
        ),
        max_ops in 1usize..9,
        max_bytes in 256usize..8192,
    ) {
        let (retired_eager, mem_eager) = run_async_ops(&ops, None);
        let policy = cricket_repro::client::BatchPolicy::new(max_ops, max_bytes);
        let (retired_batched, mem_batched) = run_async_ops(&ops, Some(policy));
        prop_assert_eq!(retired_eager, retired_batched,
            "coalescing reordered the retired-command log");
        prop_assert_eq!(mem_eager, mem_batched,
            "coalescing changed device memory");
    }
}
