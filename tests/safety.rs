//! Integration: the memory-safety claims of the paper's §3.4 — "we can
//! guarantee the absence of use-after-free and double-free errors for the
//! CUDA allocation API" — and the server's defensive behavior when a
//! (hypothetical C) client misbehaves anyway.

use cricket_repro::prelude::*;
use cricket_repro::vgpu::CudaCode;

#[test]
fn manual_double_free_is_rejected_by_the_server() {
    // A raw client *can* attempt a double free (as a C client could); the
    // server detects and rejects it. The safe API makes this unrepresentable.
    let (ctx, _s) = simulated(EnvConfig::RustNative);
    let ptr = ctx.with_raw(|r| r.malloc(4096)).unwrap();
    ctx.with_raw(|r| r.free(ptr)).unwrap();
    let err = ctx.with_raw(|r| r.free(ptr)).unwrap_err();
    assert_eq!(err.cuda_code(), Some(CudaCode::InvalidValue as i32));
}

#[test]
fn use_after_free_is_rejected_by_the_server() {
    let (ctx, _s) = simulated(EnvConfig::RustNative);
    let ptr = ctx.with_raw(|r| r.malloc(4096)).unwrap();
    ctx.with_raw(|r| r.free(ptr)).unwrap();
    let err = ctx
        .with_raw(|r| r.memcpy_htod(ptr, &[1, 2, 3]))
        .unwrap_err();
    assert_eq!(err.cuda_code(), Some(CudaCode::InvalidValue as i32));
}

#[test]
fn freeing_an_interior_pointer_is_rejected() {
    let (ctx, _s) = simulated(EnvConfig::RustNative);
    let ptr = ctx.with_raw(|r| r.malloc(4096)).unwrap();
    let err = ctx.with_raw(|r| r.free(ptr + 256)).unwrap_err();
    assert_eq!(err.cuda_code(), Some(CudaCode::InvalidValue as i32));
    ctx.with_raw(|r| r.free(ptr)).unwrap();
}

#[test]
fn out_of_bounds_copies_rejected() {
    let (ctx, _s) = simulated(EnvConfig::RustyHermit);
    let buf = ctx.alloc::<u8>(100).unwrap();
    // 100 rounds up to 256 on the device; past that must fail.
    let err = ctx.with_raw(|r| r.memcpy_dtoh(buf.ptr(), 257)).unwrap_err();
    assert_eq!(err.cuda_code(), Some(CudaCode::InvalidValue as i32));
}

#[test]
fn oom_then_recovery() {
    // Simulated device memory is backed by host memory, so use a small
    // device to exercise the OOM path without exhausting the host.
    let mut props = cricket_repro::vgpu::DeviceProperties::a100();
    props.total_global_mem = 1 << 30; // a 1 GiB "A100"
    let setup =
        cricket_repro::client::sim::SimSetup::with_config(cricket_repro::server::ServerConfig {
            props,
            ..Default::default()
        });
    let ctx = setup.context(EnvConfig::RustNative);
    // Grab a huge chunk, fail on the next huge one, recover after drop.
    let big = ctx.alloc::<u8>(700 << 20).unwrap();
    let err = ctx.alloc::<u8>(500 << 20).unwrap_err();
    assert_eq!(err.cuda_code(), Some(CudaCode::MemoryAllocation as i32));
    drop(big);
    let again = ctx.alloc::<u8>(500 << 20).unwrap();
    drop(again);
}

#[test]
fn drop_frees_exactly_once_even_on_error_paths() {
    let (ctx, _s) = simulated(EnvConfig::RustNative);
    {
        let _buf = ctx.alloc::<f32>(1000).unwrap();
        // An unrelated failing call must not disturb the buffer's free.
        // (Device 9 does not exist; the node has 4 GPUs.)
        let _ = ctx.with_raw(|r| r.set_device(9)).unwrap_err();
    }
    let stats = ctx.stats();
    assert_eq!(stats.per_api["cudaMalloc"], 1);
    assert_eq!(stats.per_api["cudaFree"], 1);
}

#[test]
fn stale_module_and_stream_handles_rejected() {
    let (ctx, _s) = simulated(EnvConfig::Unikraft);
    let image = CubinBuilder::new().kernel("empty", &[]).build(false);
    let (module_handle, func_handle) = {
        let module = ctx.load_module(&image).unwrap();
        let f = module.function("empty").unwrap();
        (module.handle(), f.handle())
        // module drops → cuModuleUnload
    };
    let err = ctx
        .with_raw(|r| r.module_get_function(module_handle, "empty"))
        .unwrap_err();
    assert_eq!(err.cuda_code(), Some(CudaCode::InvalidHandle as i32));
    let err = ctx
        .with_raw(|r| r.launch_kernel(func_handle, (1, 1, 1).into(), (1, 1, 1).into(), 0, 0, &[]))
        .unwrap_err();
    assert_eq!(err.cuda_code(), Some(CudaCode::InvalidHandle as i32));
}

#[test]
fn kernel_geometry_validation() {
    let (ctx, _s) = simulated(EnvConfig::RustNative);
    let image = CubinBuilder::new().kernel("empty", &[]).build(false);
    let module = ctx.load_module(&image).unwrap();
    let f = module.function("empty").unwrap();
    // 2048 threads per block exceeds the A100 limit of 1024.
    let err = ctx
        .launch(&f, (1, 1, 1).into(), (2048, 1, 1).into(), 0, None, &[])
        .unwrap_err();
    assert_eq!(err.cuda_code(), Some(CudaCode::InvalidValue as i32));
    // Wrong parameter count.
    let err = ctx
        .launch(&f, (1, 1, 1).into(), (32, 1, 1).into(), 0, None, &[0u8; 8])
        .unwrap_err();
    assert_eq!(err.cuda_code(), Some(CudaCode::InvalidValue as i32));
}
