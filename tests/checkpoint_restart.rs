//! Integration: checkpoint/restart through the RPC interface — Cricket's
//! migration story. State captured on one simulated GPU node restores onto
//! another; client handles stay valid; corrupted snapshots are rejected.

use cricket_repro::prelude::*;

fn populated() -> (Context, SimSetup, u64, u64) {
    let setup = SimSetup::new();
    let ctx = setup.context(EnvConfig::RustyHermit);
    let image = CubinBuilder::new()
        .kernel("saxpy", &[8, 8, 4, 4])
        .code(b"saxpy")
        .build(true);
    let module = ctx.load_module(&image).unwrap();
    let f = module.function("saxpy").unwrap();
    let x = ctx.upload(&vec![3.0f32; 512]).unwrap();
    let y = ctx.upload(&vec![1.0f32; 512]).unwrap();
    let (xp, yp, fh) = (x.ptr(), y.ptr(), f.handle());
    // Leak the wrappers so drops don't free the state we checkpoint.
    std::mem::forget((module, x, y));
    let params = ParamBuilder::new()
        .ptr(yp)
        .ptr(xp)
        .f32(2.0)
        .u32(512)
        .build();
    ctx.with_raw(|r| r.launch_kernel(fh, (2, 1, 1).into(), (256, 1, 1).into(), 0, 0, &params))
        .unwrap();
    ctx.with_raw(|r| r.device_synchronize()).unwrap();
    (ctx, setup, yp, fh)
}

#[test]
fn state_survives_migration_between_servers() {
    let (ctx_a, _setup_a, yp, fh) = populated();
    let snapshot = ctx_a.with_raw(|r| r.checkpoint()).unwrap();
    assert!(!snapshot.is_empty());

    // Fresh node B.
    let setup_b = SimSetup::new();
    let ctx_b = setup_b.context(EnvConfig::Unikraft);
    ctx_b.with_raw(|r| r.restore(&snapshot)).unwrap();

    // y was 1 + 2*3 = 7 on node A; read it on node B.
    let y = ctx_b.with_raw(|r| r.memcpy_dtoh(yp, 512 * 4)).unwrap();
    assert!(y
        .chunks_exact(4)
        .all(|c| f32::from_le_bytes(c.try_into().unwrap()) == 7.0));

    // The function handle still launches on node B.
    let params = ParamBuilder::new()
        .ptr(yp)
        .ptr(yp)
        .f32(1.0)
        .u32(512)
        .build();
    ctx_b
        .with_raw(|r| r.launch_kernel(fh, (2, 1, 1).into(), (256, 1, 1).into(), 0, 0, &params))
        .unwrap();
    ctx_b.with_raw(|r| r.device_synchronize()).unwrap();
    let y = ctx_b.with_raw(|r| r.memcpy_dtoh(yp, 4)).unwrap();
    assert_eq!(f32::from_le_bytes(y.try_into().unwrap()), 14.0);
}

#[test]
fn checkpoint_roundtrip_is_stable() {
    // capture → restore → capture must produce an equivalent snapshot.
    let (ctx, _setup, _yp, _fh) = populated();
    let snap1 = ctx.with_raw(|r| r.checkpoint()).unwrap();
    let setup_b = SimSetup::new();
    let ctx_b = setup_b.context(EnvConfig::RustNative);
    ctx_b.with_raw(|r| r.restore(&snap1)).unwrap();
    let snap2 = ctx_b.with_raw(|r| r.checkpoint()).unwrap();
    assert_eq!(snap1, snap2, "checkpoint must be a fixed point of restore");
}

#[test]
fn corrupted_snapshots_rejected() {
    let (ctx, _setup, ..) = populated();
    let snapshot = ctx.with_raw(|r| r.checkpoint()).unwrap();

    let setup_b = SimSetup::new();
    let ctx_b = setup_b.context(EnvConfig::RustNative);

    // Truncations and bit flips must not produce a half-restored device.
    let mut truncated = snapshot.clone();
    truncated.truncate(snapshot.len() / 2);
    assert!(ctx_b.with_raw(|r| r.restore(&truncated)).is_err());

    let mut flipped = snapshot.clone();
    flipped[0] ^= 0xff; // magic
    assert!(ctx_b.with_raw(|r| r.restore(&flipped)).is_err());

    assert!(ctx_b.with_raw(|r| r.restore(b"garbage")).is_err());

    // The target still works after rejected restores.
    let buf = ctx_b.upload(&[1.0f32, 2.0]).unwrap();
    assert_eq!(buf.copy_to_vec().unwrap(), vec![1.0, 2.0]);
}

#[test]
fn new_allocations_after_restore_do_not_collide() {
    let (ctx_a, _sa, yp, _fh) = populated();
    let snapshot = ctx_a.with_raw(|r| r.checkpoint()).unwrap();
    let setup_b = SimSetup::new();
    let ctx_b = setup_b.context(EnvConfig::RustNative);
    ctx_b.with_raw(|r| r.restore(&snapshot)).unwrap();
    let fresh = ctx_b.upload(&vec![9u8; 4096]).unwrap();
    assert_ne!(fresh.ptr(), yp);
    // Restored memory is untouched by the new allocation.
    let y = ctx_b.with_raw(|r| r.memcpy_dtoh(yp, 4)).unwrap();
    assert_eq!(f32::from_le_bytes(y.try_into().unwrap()), 7.0);
}
