//! Integration: checkpoint/restart through the RPC interface — Cricket's
//! migration story. State captured on one simulated GPU node restores onto
//! another; client handles stay valid; corrupted snapshots are rejected;
//! a connection reset mid-checkpoint still converges to the fault-free
//! snapshot once the client reconnects and retries.

use cricket_repro::oncrpc::{
    Fault, FaultPlan, FaultyTransport, OpaqueAuth, ReplayCache, RetryPolicy,
};
use cricket_repro::prelude::*;
use cricket_repro::server::SimTransport;
use std::sync::Arc;
use std::time::Duration;

fn populated() -> (Context, SimSetup, u64, u64) {
    let setup = SimSetup::new();
    let ctx = setup.context(EnvConfig::RustyHermit);
    let image = CubinBuilder::new()
        .kernel("saxpy", &[8, 8, 4, 4])
        .code(b"saxpy")
        .build(true);
    let module = ctx.load_module(&image).unwrap();
    let f = module.function("saxpy").unwrap();
    let x = ctx.upload(&vec![3.0f32; 512]).unwrap();
    let y = ctx.upload(&vec![1.0f32; 512]).unwrap();
    let (xp, yp, fh) = (x.ptr(), y.ptr(), f.handle());
    // Leak the wrappers so drops don't free the state we checkpoint.
    std::mem::forget((module, x, y));
    let params = ParamBuilder::new()
        .ptr(yp)
        .ptr(xp)
        .f32(2.0)
        .u32(512)
        .build();
    ctx.with_raw(|r| r.launch_kernel(fh, (2, 1, 1).into(), (256, 1, 1).into(), 0, 0, &params))
        .unwrap();
    ctx.with_raw(|r| r.device_synchronize()).unwrap();
    (ctx, setup, yp, fh)
}

#[test]
fn state_survives_migration_between_servers() {
    let (ctx_a, _setup_a, yp, fh) = populated();
    let snapshot = ctx_a.with_raw(|r| r.checkpoint()).unwrap();
    assert!(!snapshot.is_empty());

    // Fresh node B.
    let setup_b = SimSetup::new();
    let ctx_b = setup_b.context(EnvConfig::Unikraft);
    ctx_b.with_raw(|r| r.restore(&snapshot)).unwrap();

    // y was 1 + 2*3 = 7 on node A; read it on node B.
    let y = ctx_b.with_raw(|r| r.memcpy_dtoh(yp, 512 * 4)).unwrap();
    assert!(y
        .chunks_exact(4)
        .all(|c| f32::from_le_bytes(c.try_into().unwrap()) == 7.0));

    // The function handle still launches on node B.
    let params = ParamBuilder::new()
        .ptr(yp)
        .ptr(yp)
        .f32(1.0)
        .u32(512)
        .build();
    ctx_b
        .with_raw(|r| r.launch_kernel(fh, (2, 1, 1).into(), (256, 1, 1).into(), 0, 0, &params))
        .unwrap();
    ctx_b.with_raw(|r| r.device_synchronize()).unwrap();
    let y = ctx_b.with_raw(|r| r.memcpy_dtoh(yp, 4)).unwrap();
    assert_eq!(f32::from_le_bytes(y.try_into().unwrap()), 14.0);
}

#[test]
fn checkpoint_roundtrip_is_stable() {
    // capture → restore → capture must produce an equivalent snapshot.
    let (ctx, _setup, _yp, _fh) = populated();
    let snap1 = ctx.with_raw(|r| r.checkpoint()).unwrap();
    let setup_b = SimSetup::new();
    let ctx_b = setup_b.context(EnvConfig::RustNative);
    ctx_b.with_raw(|r| r.restore(&snap1)).unwrap();
    let snap2 = ctx_b.with_raw(|r| r.checkpoint()).unwrap();
    assert_eq!(snap1, snap2, "checkpoint must be a fixed point of restore");
}

#[test]
fn corrupted_snapshots_rejected() {
    let (ctx, _setup, ..) = populated();
    let snapshot = ctx.with_raw(|r| r.checkpoint()).unwrap();

    let setup_b = SimSetup::new();
    let ctx_b = setup_b.context(EnvConfig::RustNative);

    // Truncations and bit flips must not produce a half-restored device.
    let mut truncated = snapshot.clone();
    truncated.truncate(snapshot.len() / 2);
    assert!(ctx_b.with_raw(|r| r.restore(&truncated)).is_err());

    let mut flipped = snapshot.clone();
    flipped[0] ^= 0xff; // magic
    assert!(ctx_b.with_raw(|r| r.restore(&flipped)).is_err());

    assert!(ctx_b.with_raw(|r| r.restore(b"garbage")).is_err());

    // The target still works after rejected restores.
    let buf = ctx_b.upload(&[1.0f32, 2.0]).unwrap();
    assert_eq!(buf.copy_to_vec().unwrap(), vec![1.0, 2.0]);
}

/// Failure model meets migration: the connection resets while the
/// checkpoint is being captured, and the reply of the retried capture is
/// then dropped. The hardened client reconnects and retransmits
/// (CKPT_CAPTURE is declared `idempotent`, so auto-retry is safe), the
/// snapshot it finally receives is byte-identical to a fault-free capture,
/// and restoring it onto a fresh node reproduces the exact device state.
#[test]
fn connection_reset_mid_checkpoint_converges_to_fault_free_state() {
    let (ctx_a, setup_a, yp, _fh) = populated();
    let reference = ctx_a.with_raw(|r| r.checkpoint()).unwrap();

    let replay = Arc::new(ReplayCache::default());
    setup_a.rpc.set_replay_cache(Arc::clone(&replay));
    // op 0: the capture request dies mid-send → reconnect + retransmit;
    // op 2: the retried capture's reply is dropped → same-xid retransmit.
    let plan =
        FaultPlan::scripted(vec![(0, Fault::ResetOnSend), (2, Fault::DropReply)]).into_shared();
    let env = EnvConfig::RustyHermit;
    let mut client = setup_a.chaos_client(env, &plan);
    {
        let rpc_srv = Arc::clone(&setup_a.rpc);
        let clock = Arc::clone(&setup_a.clock);
        let plan2 = Arc::clone(&plan);
        let rpc = client.rpc();
        rpc.set_credential(OpaqueAuth::client_token(0xCAFE_0003));
        rpc.set_retry_policy(RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_micros(50),
            max_delay: Duration::from_millis(1),
            retry_non_idempotent: false, // capture is idempotent — enough
        });
        rpc.set_call_timeout(Some(Duration::from_millis(40)))
            .unwrap();
        rpc.set_reconnect(move || {
            let fresh = SimTransport::new(Arc::clone(&rpc_srv), env.guest(), Arc::clone(&clock));
            Ok(Box::new(FaultyTransport::new(
                Box::new(fresh),
                Arc::clone(&plan2),
            )))
        });
    }

    let snapshot = client.checkpoint().unwrap();
    assert_eq!(
        snapshot, reference,
        "capture under faults diverged from the fault-free snapshot"
    );
    let stats = client.rpc().stats();
    assert_eq!(stats.reconnects, 1, "stats: {stats:?}");
    assert!(stats.retries >= 2, "stats: {stats:?}");

    // The snapshot restores onto a fresh node: y is still 1 + 2*3 = 7.
    let setup_b = SimSetup::new();
    let ctx_b = setup_b.context(EnvConfig::Unikraft);
    ctx_b.with_raw(|r| r.restore(&snapshot)).unwrap();
    let y = ctx_b.with_raw(|r| r.memcpy_dtoh(yp, 512 * 4)).unwrap();
    assert!(y
        .chunks_exact(4)
        .all(|c| f32::from_le_bytes(c.try_into().unwrap()) == 7.0));
}

#[test]
fn new_allocations_after_restore_do_not_collide() {
    let (ctx_a, _sa, yp, _fh) = populated();
    let snapshot = ctx_a.with_raw(|r| r.checkpoint()).unwrap();
    let setup_b = SimSetup::new();
    let ctx_b = setup_b.context(EnvConfig::RustNative);
    ctx_b.with_raw(|r| r.restore(&snapshot)).unwrap();
    let fresh = ctx_b.upload(&vec![9u8; 4096]).unwrap();
    assert_ne!(fresh.ptr(), yp);
    // Restored memory is untouched by the new allocation.
    let y = ctx_b.with_raw(|r| r.memcpy_dtoh(yp, 4)).unwrap();
    assert_eq!(f32::from_le_bytes(y.try_into().unwrap()), 7.0);
}
