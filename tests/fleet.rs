//! Fleet integration: the portmap shard directory over real TCP, shard
//! registration tied to the server lifecycle, and connect-time failover to
//! the next-best shard when the chosen shard's listener is down.
//!
//! The failover matrix reuses the chaos harness's seed discipline: each
//! seed in the CI matrix deterministically picks which shard to crash, and
//! a failure names the seed.

use cricket_repro::oncrpc::{ChaosRng, Portmap, PortmapClient, TcpTransport};
use cricket_repro::prelude::*;
use cricket_repro::server::ServerConfig;
use std::time::Duration;

/// The same fixed seed matrix `ci.sh chaos` runs (see `tests/chaos.rs`).
const CI_SEEDS: [u64; 6] = [1, 7, 42, 0xC41C_4E71, 0xDEAD_BEEF, 20_230_915];

/// RFC 1833 portmap procedures over a real TCP listener: set, getport,
/// dump, unset round-trip through the wire, not just the local table.
#[test]
fn portmap_core_procs_over_tcp() {
    let pm = std::sync::Arc::new(Portmap::new());
    let handle = pm.serve("127.0.0.1:0").unwrap();

    let t = TcpTransport::connect(handle.addr()).unwrap();
    let mut client = PortmapClient::new(Box::new(t));
    const TCP: u32 = 6;
    let mapping = |vers: u32, port: u32| cricket_repro::oncrpc::Mapping {
        prog: 300_101,
        vers,
        prot: TCP,
        port,
    };
    assert!(client.set(mapping(1, 4001)).unwrap());
    assert!(client.set(mapping(2, 4002)).unwrap());
    assert_eq!(client.getport(300_101, 1, TCP).unwrap(), 4001);
    assert_eq!(client.getport(300_101, 9, TCP).unwrap(), 0, "unknown vers");
    let dump = client.dump().unwrap();
    assert!(dump
        .iter()
        .any(|m| m.prog == 300_101 && m.vers == 2 && m.port == 4002));
    assert!(client.unset(300_101, 1).unwrap());
    assert_eq!(client.getport(300_101, 1, TCP).unwrap(), 0);
    assert_eq!(
        client.getport(300_101, 2, TCP).unwrap(),
        4002,
        "unset is per-vers"
    );
    handle.shutdown();
}

/// A `ServerBuilder` with `.directory(...)` registers its shard on serve
/// and deregisters on graceful shutdown; a crash-kill leaves the stale
/// entry behind.
#[test]
fn shard_registration_follows_server_lifecycle() {
    let pm = std::sync::Arc::new(Portmap::new());
    let dir_handle = pm.serve("127.0.0.1:0").unwrap();
    let dir_addr = dir_handle.addr();
    let prog = cricket_repro::proto::CRICKET_CUDA;
    let vers = cricket_repro::proto::CRICKET_V1;

    let graceful = ServerBuilder::new("127.0.0.1:0")
        .directory(dir_addr, prog, vers)
        .heartbeat(Duration::from_secs(3600))
        .serve()
        .unwrap();
    let crashed = ServerBuilder::new("127.0.0.1:0")
        .directory(dir_addr, prog, vers)
        .heartbeat(Duration::from_secs(3600))
        .serve()
        .unwrap();
    let (gport, cport) = (
        u32::from(graceful.addr().port()),
        u32::from(crashed.addr().port()),
    );
    let shards = pm.shard_dump(prog, vers);
    assert_eq!(shards.len(), 2, "both shards registered on serve");
    let report = shards.iter().find(|s| s.port == gport).unwrap().load;
    assert!(report.total_mem > 0, "registration carries a load report");

    graceful.shutdown();
    let shards = pm.shard_dump(prog, vers);
    assert_eq!(shards.len(), 1, "graceful shutdown deregisters");
    assert_eq!(shards[0].port, cport);

    crashed.kill();
    let shards = pm.shard_dump(prog, vers);
    assert_eq!(shards.len(), 1, "crash-kill leaves the stale entry");
    assert!(
        TcpTransport::connect(("127.0.0.1", cport as u16)).is_err(),
        "crashed listener must be down"
    );
    dir_handle.shutdown();
}

/// Directory endpoints fail typed: nothing registered, or every ranked
/// candidate unreachable.
#[test]
fn directory_endpoint_typed_errors() {
    let pm = std::sync::Arc::new(Portmap::new());
    let dir_handle = pm.serve("127.0.0.1:0").unwrap();
    let endpoint = Endpoint::directory(dir_handle.addr()).unwrap();

    match Context::connect(&endpoint).err() {
        Some(ClientError::Directory(msg)) => assert!(msg.contains("no shard"), "{msg}"),
        other => panic!("expected Directory error, got {other:?}"),
    }

    // Register a corpse: a port nothing listens on.
    pm.shard_set(
        cricket_repro::proto::CRICKET_CUDA,
        cricket_repro::proto::CRICKET_V1,
        1,
        Default::default(),
    );
    match Context::connect(&endpoint).err() {
        Some(ClientError::Directory(msg)) => assert!(msg.contains("unreachable"), "{msg}"),
        other => panic!("expected Directory error, got {other:?}"),
    }
    dir_handle.shutdown();
}

/// The failover acceptance test: killing one shard mid-run leaves a stale
/// directory entry; new sessions route around the corpse to the next-best
/// shard, and existing tenants on surviving shards keep completing ops.
/// One deterministic crash schedule per CI seed.
#[test]
fn client_failover_routes_around_killed_shard() {
    for seed in CI_SEEDS {
        let mut fleet = FleetBuilder::new(3)
            .config(ServerConfig::default())
            .heartbeat(Duration::from_secs(3600))
            .launch()
            .unwrap();
        let endpoint = Endpoint::directory(fleet.dir_addr()).unwrap();

        // Six tenants spread 2-2-2 across the shards before the crash.
        let mut tenants: Vec<(Context, std::net::SocketAddr)> = (0..6)
            .map(|_| {
                let (t, addr) = endpoint.connect_transport().unwrap();
                let ctx = Context::from_client(CricketClient::over(
                    t,
                    cricket_repro::client::env::ClientFlavor::RustRpcLib,
                    None,
                ));
                ctx.device_count().unwrap();
                (ctx, addr)
            })
            .collect();

        // The seed picks the victim, chaos-harness style.
        let victim = (ChaosRng::new(seed).next_u64() % fleet.len() as u64) as usize;
        let victim_addr = fleet.shard(victim).unwrap().addr();
        assert!(fleet.kill_shard(victim), "seed {seed:#x}: kill failed");

        // New sessions must route around the corpse even though its stale
        // entry still ranks in the directory.
        for _ in 0..4 {
            let (t, addr) = endpoint.connect_transport().unwrap();
            assert_ne!(addr, victim_addr, "seed {seed:#x}: placed on the corpse");
            let mut c = CricketClient::over(
                t,
                cricket_repro::client::env::ClientFlavor::RustRpcLib,
                None,
            );
            let p = c.malloc(1024).unwrap();
            c.free(p).unwrap();
        }

        // Tenants on surviving shards keep completing ops; tenants of the
        // dead shard reconnect through the directory and finish there.
        let mut survivors = 0;
        for (ctx, addr) in tenants.drain(..) {
            if addr == victim_addr {
                drop(ctx);
                let replacement = Context::connect(&endpoint).unwrap();
                assert_eq!(replacement.device_count().unwrap(), 4);
            } else {
                assert_eq!(
                    ctx.device_count().unwrap(),
                    4,
                    "seed {seed:#x}: survivor on {addr} stalled"
                );
                survivors += 1;
            }
        }
        assert_eq!(survivors, 4, "seed {seed:#x}: 2-2-2 spread expected");
        fleet.shutdown();
    }
}
