//! Integration: the five Table-1 environments produce identical *results*
//! while exhibiting the paper's *performance ordering* on the virtual
//! clock — correctness is environment-independent, time is not.

use cricket_repro::prelude::*;

/// Run a small vectorAdd and return (result, virtual seconds).
fn vector_add_in(env: EnvConfig) -> (Vec<f32>, f64) {
    let (ctx, setup) = simulated(env);
    let image = CubinBuilder::new()
        .kernel("vectorAdd", &[8, 8, 8, 4])
        .build(true);
    let module = ctx.load_module(&image).unwrap();
    let f = module.function("vectorAdd").unwrap();
    let n = 4096usize;
    let a: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let b: Vec<f32> = (0..n).map(|i| (2 * i) as f32).collect();
    let da = ctx.upload(&a).unwrap();
    let db = ctx.upload(&b).unwrap();
    let dc = ctx.alloc::<f32>(n).unwrap();
    let params = ParamBuilder::new()
        .ptr(dc.ptr())
        .ptr(da.ptr())
        .ptr(db.ptr())
        .u32(n as u32)
        .build();
    ctx.launch(&f, (16, 1, 1).into(), (256, 1, 1).into(), 0, None, &params)
        .unwrap();
    ctx.synchronize().unwrap();
    (dc.copy_to_vec().unwrap(), setup.seconds())
}

#[test]
fn results_identical_across_all_environments() {
    let (reference, _) = vector_add_in(EnvConfig::RustNative);
    for env in [
        EnvConfig::CNative,
        EnvConfig::LinuxVm,
        EnvConfig::Unikraft,
        EnvConfig::RustyHermit,
        EnvConfig::RustyHermitLegacy,
        EnvConfig::LinuxVmNoOffload,
    ] {
        let (result, _) = vector_add_in(env);
        assert_eq!(result, reference, "results must not depend on {env:?}");
    }
}

#[test]
fn latency_ordering_matches_paper() {
    let t = |env| vector_add_in(env).1;
    let native = t(EnvConfig::RustNative);
    let hermit = t(EnvConfig::RustyHermit);
    let unikraft = t(EnvConfig::Unikraft);
    let vm = t(EnvConfig::LinuxVm);
    // This mini-app mixes small calls (VM slowest) with bulk copies (VM
    // faster than the unikernels thanks to offloads), so like the paper's
    // Fig. 5 we only require: native fastest, Hermit < Unikraft, and
    // unikernels "similar or better than the Linux VM".
    assert!(
        native < hermit && hermit < unikraft,
        "expected native < hermit < unikraft, got \
         {native:.6} {hermit:.6} {unikraft:.6}"
    );
    assert!(hermit < vm, "hermit {hermit:.6} must beat the VM {vm:.6}");
    assert!(
        unikraft < vm * 1.10,
        "unikraft {unikraft:.6} similar or better than VM {vm:.6}"
    );
    // The strict >2x factor applies to pure API-call streams (Fig. 6,
    // asserted in cricket-bench); with bulk copies mixed in the gap
    // narrows, but stays well above 1.5x.
    assert!(
        hermit > 1.5 * native,
        "hermit {hermit:.6} vs native {native:.6}"
    );
}

#[test]
fn runs_are_deterministic() {
    // Identical programs on identical environments read identical virtual
    // times — the property that removes the paper's "10 averaged runs".
    let a = vector_add_in(EnvConfig::RustyHermit);
    let b = vector_add_in(EnvConfig::RustyHermit);
    assert_eq!(a.1, b.1, "virtual time must be deterministic");
    assert_eq!(a.0, b.0);
}

#[test]
fn histogram_correct_in_every_environment() {
    for env in EnvConfig::table1() {
        let (ctx, _s) = simulated(env);
        let report = histogram::run(
            &ctx,
            &histogram::HistogramConfig {
                byte_count: 32 << 10,
                iterations: 2,
            },
        )
        .unwrap();
        assert!(report.valid, "{env:?}");
    }
}

#[test]
fn api_call_counts_are_environment_independent() {
    // The same program issues the same CUDA calls everywhere; only time
    // differs (this is what makes the paper's Fig. 5/6 comparisons fair).
    let cfg = matrix_mul::MatrixMulConfig {
        ha: 32,
        wa: 32,
        wb: 32,
        iterations: 5,
        warmups: 7,
    };
    let mut counts = Vec::new();
    for env in EnvConfig::table1() {
        let (ctx, _s) = simulated(env);
        let report = matrix_mul::run(&ctx, &cfg).unwrap();
        assert!(report.valid);
        counts.push(report.stats.api_calls);
    }
    assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
}
