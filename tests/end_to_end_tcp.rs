//! Integration: the full stack over *real* TCP loopback — generated stubs,
//! record marking, threaded server, simulated GPU — with concurrent
//! clients, exactly how an external deployment would use `cricket-server`.

use cricket_repro::prelude::*;
use cricket_repro::server::{make_rpc_server, CricketServer, ServerConfig};
use cricket_repro::simnet::SimClock;

fn spawn_server() -> oncrpc::ServerHandle {
    let server = CricketServer::new(ServerConfig::default(), SimClock::new());
    let rpc = make_rpc_server(server);
    oncrpc::server::serve_tcp(rpc, "127.0.0.1:0").expect("bind")
}

#[test]
fn matrix_mul_over_tcp() {
    let handle = spawn_server();
    let ctx = Context::connect_tcp(&handle.addr().to_string()).unwrap();
    let cfg = matrix_mul::MatrixMulConfig {
        ha: 64,
        wa: 64,
        wb: 64,
        iterations: 25,
        warmups: 7,
    };
    let report = matrix_mul::run(&ctx, &cfg).unwrap();
    assert!(report.valid);
    assert_eq!(report.stats.api_calls, cfg.expected_api_calls());
    drop(ctx);
    handle.shutdown();
}

#[test]
fn linear_solver_over_tcp() {
    let handle = spawn_server();
    let ctx = Context::connect_tcp(&handle.addr().to_string()).unwrap();
    let cfg = linear_solver::LinearSolverConfig {
        n: 64,
        iterations: 3,
        warmups: 2,
    };
    let report = linear_solver::run(&ctx, &cfg).unwrap();
    assert!(report.valid);
    drop(ctx);
    handle.shutdown();
}

#[test]
fn concurrent_tcp_clients_share_the_gpu() {
    let handle = spawn_server();
    let addr = handle.addr().to_string();
    let mut joins = Vec::new();
    for t in 0..6u32 {
        let addr = addr.clone();
        joins.push(std::thread::spawn(move || {
            let ctx = Context::connect_tcp(&addr).unwrap();
            let data: Vec<f32> = (0..2048).map(|i| (i * (t + 1)) as f32).collect();
            let buf = ctx.upload(&data).unwrap();
            for _ in 0..20 {
                assert_eq!(
                    buf.copy_to_vec().unwrap(),
                    data,
                    "client {t} data corrupted"
                );
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    handle.shutdown();
}

#[test]
fn large_transfer_over_tcp_exercises_fragmentation() {
    let handle = spawn_server();
    let ctx = Context::connect_tcp(&handle.addr().to_string()).unwrap();
    // 8 MiB: several 1 MiB record fragments each way.
    let data: Vec<u8> = (0..8 << 20).map(|i| (i % 249) as u8).collect();
    let buf = ctx.upload(&data).unwrap();
    assert_eq!(buf.copy_to_vec().unwrap(), data);
    drop(buf);
    drop(ctx);
    handle.shutdown();
}

#[test]
fn cuda_error_codes_cross_the_wire() {
    let handle = spawn_server();
    let ctx = Context::connect_tcp(&handle.addr().to_string()).unwrap();
    // OOM surfaces as the CUDA allocation error, not a transport failure.
    let err = ctx.alloc::<u8>(1 << 50).unwrap_err();
    assert_eq!(
        err.cuda_code(),
        Some(cricket_repro::vgpu::CudaCode::MemoryAllocation as i32)
    );
    // Unknown kernels in a module are BadModule → NotFound on the wire.
    let image = CubinBuilder::new()
        .kernel("noSuchKernel", &[8])
        .build(false);
    let err = ctx.load_module(&image).unwrap_err();
    assert_eq!(
        err.cuda_code(),
        Some(cricket_repro::vgpu::CudaCode::NotFound as i32)
    );
    drop(ctx);
    handle.shutdown();
}
