//! Deterministic chaos harness: full client↔server stacks under exact,
//! replayable fault schedules (ISSUE: every schedule is named by its seed).
//!
//! The CI `chaos` step runs this file across the fixed seed matrix below;
//! a failure always names the seed so the schedule can be replayed with
//! `FaultPlan::from_seed(<seed>)`.

// These tests deliberately exercise the deprecated pre-builder entry
// points: they are contractually one-line shims over `ServerBuilder`
// and must keep working byte-identically.
#![allow(deprecated)]

use cricket_repro::oncrpc::{
    Fault, FaultConfig, FaultPlan, FaultyTransport, OpaqueAuth, ReplayCache, RetryPolicy,
    RpcClient, RpcError, SharedFaultPlan, TcpTransport,
};
use cricket_repro::prelude::*;
use cricket_repro::server::{serve_tcp_sessions, SimTransport};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The fixed fault matrix exercised by `ci.sh chaos`.
const CI_SEEDS: [u64; 6] = [1, 7, 42, 0xC41C_4E71, 0xDEAD_BEEF, 20_230_915];

/// Wire a chaos client for survival: client token for at-most-once
/// dedupe, capped-backoff retries (including non-idempotent calls — the
/// server's replay cache makes them safe), a short per-call deadline, and
/// a reconnector that continues the same fault schedule.
fn harden(client: &mut CricketClient, setup: &SimSetup, env: EnvConfig, plan: &SharedFaultPlan) {
    let rpc_srv = Arc::clone(&setup.rpc);
    let clock = Arc::clone(&setup.clock);
    let plan2 = Arc::clone(plan);
    let rpc = client.rpc();
    rpc.set_credential(OpaqueAuth::client_token(0xC11E_0001));
    rpc.set_retry_policy(RetryPolicy {
        max_attempts: 20,
        base_delay: Duration::from_micros(50),
        max_delay: Duration::from_millis(1),
        retry_non_idempotent: true,
    });
    rpc.set_call_timeout(Some(Duration::from_millis(40)))
        .unwrap();
    rpc.set_reconnect(move || {
        let fresh = SimTransport::new(Arc::clone(&rpc_srv), env.guest(), Arc::clone(&clock));
        Ok(Box::new(FaultyTransport::new(
            Box::new(fresh),
            Arc::clone(&plan2),
        )))
    });
}

/// Run a fixed GPU workload against a fresh simulated server while `plan`
/// mangles the wire. Every call must return the correct result; no server
/// allocation may leak. Returns the plan's rendered decision trace.
///
/// Uses [`FaultConfig::lossy`]: resets, drops, delays, duplicates and
/// truncations are all detected or masked by the stack, so full success is
/// the contract. Payload corruption is undetectable without an end-to-end
/// checksum and is exercised separately (see
/// `corrupted_payloads_surface_as_typed_errors_not_panics`).
fn run_seeded_workload(seed: u64) -> String {
    let setup = SimSetup::new();
    let replay = Arc::new(ReplayCache::default());
    setup.rpc.set_replay_cache(Arc::clone(&replay));
    let plan = FaultPlan::from_seed_with(seed, FaultConfig::lossy()).into_shared();
    let env = EnvConfig::RustyHermit;
    let mut client = setup.chaos_client(env, &plan);
    harden(&mut client, &setup, env, &plan);

    let baseline = client.mem_get_info().unwrap().free;
    let mut ptrs: Vec<(u64, Vec<u8>)> = Vec::new();
    for i in 0..6u8 {
        let ptr = client.malloc(4096).unwrap();
        assert!(
            ptrs.iter().all(|(p, _)| *p != ptr),
            "seed {seed}: duplicate pointer {ptr:#x} — a malloc executed twice"
        );
        let pattern: Vec<u8> = (0..128u32).map(|b| (b as u8).wrapping_mul(i + 1)).collect();
        client.memcpy_htod(ptr, &pattern).unwrap();
        ptrs.push((ptr, pattern));
    }
    assert_eq!(client.device_count().unwrap(), 4, "seed {seed}");
    for (ptr, pattern) in &ptrs {
        assert_eq!(
            &client.memcpy_dtoh(*ptr, 128).unwrap(),
            pattern,
            "seed {seed}: readback corrupted"
        );
    }
    for (ptr, _) in &ptrs {
        client.free(*ptr).unwrap();
    }
    assert_eq!(
        client.mem_get_info().unwrap().free,
        baseline,
        "seed {seed}: leaked server allocation"
    );
    let trace = plan.lock().trace_string();
    trace
}

/// Acceptance criterion: `FaultPlan::from_seed(s)` produces byte-identical
/// event traces across two same-seed runs of the same workload.
#[test]
fn same_seed_produces_byte_identical_traces() {
    let seed = 0xC41C_4E71;
    let first = run_seeded_workload(seed);
    let second = run_seeded_workload(seed);
    assert!(!first.is_empty());
    assert_eq!(first, second, "same seed must replay the same schedule");
    // The chosen seed actually injects faults — a trace of clean deliveries
    // would pin nothing.
    assert!(
        first.lines().any(|l| !l.ends_with(":ok")),
        "seed {seed} injected no faults:\n{first}"
    );
}

#[test]
fn different_seeds_produce_different_schedules() {
    assert_ne!(run_seeded_workload(1), run_seeded_workload(2));
}

/// The CI fault matrix. Runs each fixed seed and names the failing seed in
/// the panic message so the schedule can be replayed locally.
#[test]
fn fault_matrix_fixed_seeds() {
    for seed in CI_SEEDS {
        let outcome = std::panic::catch_unwind(|| run_seeded_workload(seed));
        if let Err(cause) = outcome {
            let msg = cause
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| cause.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!("chaos matrix failed at seed {seed} (replay with FaultPlan::from_seed({seed})): {msg}");
        }
    }
}

/// Acceptance criterion: a coalesced batch whose reply is dropped
/// mid-flight is retransmitted under the same xid and served from the
/// replay cache with a **byte-identical status vector** — its sub-ops
/// execute exactly once, and the typed error decoded from the cached
/// reply names the same failing sub-op the original execution recorded.
#[test]
fn dropped_batch_reply_is_replayed_with_identical_status_vector() {
    let setup = SimSetup::new();
    let replay = Arc::new(ReplayCache::default());
    setup.rpc.set_replay_cache(Arc::clone(&replay));
    // Events alternate request/reply: malloc is 0/1, the
    // CRICKET_BATCH_EXEC flush is 2/3 — drop the batch *reply*.
    let plan = FaultPlan::scripted(vec![(3, Fault::DropReply)]).into_shared();
    let env = EnvConfig::RustyHermit;
    let mut client = setup.chaos_client(env, &plan);
    harden(&mut client, &setup, env, &plan);
    client.enable_batching();

    let ptr = client.malloc(4096).unwrap();
    client.memset(ptr, 1, 64).unwrap(); // sub-op 0: executes
    client.memset(0xdead_beef_0000, 2, 8).unwrap(); // sub-op 1: fails
    client.memset(ptr + 64, 3, 64).unwrap(); // sub-op 2: skipped (same slice)
    let err = client.flush_batch().unwrap_err();
    match err {
        ClientError::Batch { api, index, code } => {
            assert_eq!(api, "cudaMemset");
            assert_eq!(index, 1, "cached status vector named a different sub-op");
            assert_ne!(code, 0);
        }
        other => panic!("expected a typed batch error, got {other}"),
    }
    // The error above was decoded from the *retransmitted* reply: the
    // first one died on the wire, so the client retried and the server
    // answered from the replay cache instead of executing again.
    assert!(client.rpc().stats().retries >= 1);
    assert!(
        replay.stats().hits >= 1,
        "batch retransmission bypassed the replay cache: {:?}",
        replay.stats()
    );
    // Exactly-once, observable in device memory: sub-op 0 applied once,
    // sub-op 2 never ran.
    let back = client.memcpy_dtoh(ptr, 128).unwrap();
    assert_eq!(&back[..64], &[1u8; 64][..]);
    assert_eq!(&back[64..], &[0u8; 64][..], "skipped sub-op executed");
    client.free(ptr).unwrap();
}

/// A connection reset while the batch request itself is in flight: the
/// server never saw it, so the reconnect-and-retransmit path must execute
/// the batch exactly once (no replay hit, no double execution).
#[test]
fn reset_batch_request_executes_exactly_once_after_reconnect() {
    let setup = SimSetup::new();
    let replay = Arc::new(ReplayCache::default());
    setup.rpc.set_replay_cache(Arc::clone(&replay));
    // Event 2 is the batch *request* record (malloc is events 0/1).
    let plan = FaultPlan::scripted(vec![(2, Fault::ResetOnSend)]).into_shared();
    let env = EnvConfig::Unikraft;
    let mut client = setup.chaos_client(env, &plan);
    harden(&mut client, &setup, env, &plan);
    client.enable_batching();

    let ptr = client.malloc(4096).unwrap();
    for i in 0..8u64 {
        client.memset(ptr + i * 8, i as i32, 8).unwrap();
    }
    client.flush_batch().unwrap();
    assert_eq!(client.rpc().stats().reconnects, 1);
    let back = client.memcpy_dtoh(ptr, 64).unwrap();
    for i in 0..8usize {
        assert_eq!(&back[i * 8..(i + 1) * 8], &[i as u8; 8][..]);
    }
    client.free(ptr).unwrap();
}

/// Seeded batch workload for the CI matrix: a hardened *batching* client
/// runs a memset/H2D-heavy loop under the seed's fault schedule; every
/// readback must match unbatched semantics and nothing may leak.
fn run_seeded_batch_workload(seed: u64) {
    let setup = SimSetup::new();
    let replay = Arc::new(ReplayCache::default());
    setup.rpc.set_replay_cache(Arc::clone(&replay));
    let plan = FaultPlan::from_seed_with(seed, FaultConfig::lossy()).into_shared();
    let env = EnvConfig::RustyHermit;
    let mut client = setup.chaos_client(env, &plan);
    harden(&mut client, &setup, env, &plan);
    client.enable_batching();

    let baseline = client.mem_get_info().unwrap().free;
    let ptr = client.malloc(4096).unwrap();
    for round in 0..4u8 {
        for i in 0..8u64 {
            client
                .memset(ptr + i * 64, (round + 1) as i32 * 10 + i as i32, 64)
                .unwrap();
        }
        let pattern: Vec<u8> = (0..64u32).map(|b| (b as u8) ^ round).collect();
        client.memcpy_htod(ptr + 512, &pattern).unwrap();
        // The D2H readback is the sync point: it flushes the batch and
        // must observe every recorded op, exactly once, in order.
        let back = client.memcpy_dtoh(ptr, 576).unwrap();
        for i in 0..8usize {
            assert_eq!(
                &back[i * 64..i * 64 + 64],
                &[(round + 1) * 10 + i as u8; 64][..],
                "seed {seed}: batched memset {i} of round {round} lost or reordered"
            );
        }
        assert_eq!(&back[512..], &pattern[..], "seed {seed}: batched H2D lost");
    }
    client.free(ptr).unwrap();
    assert_eq!(
        client.mem_get_info().unwrap().free,
        baseline,
        "seed {seed}: leaked server allocation"
    );
}

/// The CI batch fault matrix: the coalescing path holds its contract on
/// every fixed seed; failures name the seed for local replay.
#[test]
fn batch_fault_matrix_fixed_seeds() {
    for seed in CI_SEEDS {
        let outcome = std::panic::catch_unwind(|| run_seeded_batch_workload(seed));
        if let Err(cause) = outcome {
            let msg = cause
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| cause.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!("batch chaos matrix failed at seed {seed} (replay with FaultPlan::from_seed({seed})): {msg}");
        }
    }
}

/// Seeded overload workload for the CI matrix: the session runs under a
/// tight device-time rate quota, so the admission gate sheds calls with
/// `CRICKET_BUSY` *while the seed's fault schedule mangles the wire*. The
/// hardened client backs off by the server's retry-after hint and
/// retransmits; the contract is that every call still completes exactly
/// once. This doubles as the end-to-end proof that busy rejections are
/// never replay-cached: a cached rejection would be replayed to the
/// same-xid retransmission forever and the workload could never finish.
fn run_seeded_shed_workload(seed: u64) {
    let setup = SimSetup::new();
    let replay = Arc::new(ReplayCache::default());
    setup.rpc.set_replay_cache(Arc::clone(&replay));
    let plan = FaultPlan::from_seed_with(seed, FaultConfig::lossy()).into_shared();
    let env = EnvConfig::RustyHermit;
    let mut client = setup.chaos_client(env, &plan);
    harden(&mut client, &setup, env, &plan);

    // ~60µs of virtual time elapses per RPC round trip. At a 1/20 refill
    // rate (50ms of device time per wall second) one round trip banks
    // ~3µs of the 6µs dispatch quantum, so work calls are shed roughly
    // every other attempt and every shed recovers within a retry or two —
    // each rejection itself advances the virtual clock toward the refill.
    client
        .set_qos(&cricket_repro::proto::QosParams {
            session: 0,
            weight: 1,
            priority: 100,
            rate_ns_per_s: 50_000_000,
            burst_ns: 6_000,
            max_resident_bytes: 0,
        })
        .unwrap();

    let baseline = client.mem_get_info().unwrap().free;
    let mut ptrs: Vec<(u64, Vec<u8>)> = Vec::new();
    for i in 0..4u8 {
        let ptr = client.malloc(4096).unwrap();
        assert!(
            ptrs.iter().all(|(p, _)| *p != ptr),
            "seed {seed}: duplicate pointer {ptr:#x} — a shed malloc executed twice"
        );
        let pattern: Vec<u8> = (0..64u32).map(|b| (b as u8).wrapping_add(i)).collect();
        client.memcpy_htod(ptr, &pattern).unwrap();
        ptrs.push((ptr, pattern));
    }
    for (ptr, pattern) in &ptrs {
        assert_eq!(
            &client.memcpy_dtoh(*ptr, 64).unwrap(),
            pattern,
            "seed {seed}: readback corrupted under shedding"
        );
    }
    for (ptr, _) in &ptrs {
        client.free(*ptr).unwrap();
    }
    assert_eq!(
        client.mem_get_info().unwrap().free,
        baseline,
        "seed {seed}: a shed-then-retried call executed twice or leaked"
    );
    // The quota actually bit: sheds since the last report saturate the
    // shard's advertised QoS pressure.
    assert_eq!(
        setup.server.load_report().qos_pressure,
        1000,
        "seed {seed}: the rate quota never shed a call — nothing was exercised"
    );
}

/// The CI overload matrix: `CRICKET_BUSY` shedding composes with every
/// fixed fault seed; failures name the seed for local replay.
#[test]
fn shed_and_retry_matrix_fixed_seeds() {
    for seed in CI_SEEDS {
        let outcome = std::panic::catch_unwind(|| run_seeded_shed_workload(seed));
        if let Err(cause) = outcome {
            let msg = cause
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| cause.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!("shed chaos matrix failed at seed {seed} (replay with FaultPlan::from_seed({seed})): {msg}");
        }
    }
}

/// Payload corruption is *undetectable* by RPC/XDR (there is no checksum —
/// on real wires TCP's covers it): a flipped byte can change arguments or
/// results while every record still parses. The contract is therefore
/// weaker than the lossy matrix's: a call may fail with a typed error —
/// never a panic or a hang — and the stack keeps serving correct results
/// once the wire is clean again.
#[test]
fn corrupted_payloads_surface_as_typed_errors_not_panics() {
    let setup = SimSetup::new();
    let plan = FaultPlan::scripted(vec![(0, Fault::CorruptRequest), (3, Fault::CorruptReply)])
        .into_shared();
    let env = EnvConfig::RustyHermit;
    let mut client = setup.chaos_client(env, &plan);
    harden(&mut client, &setup, env, &plan);

    // No unwraps: any typed outcome is within contract.
    let mut outcomes = Vec::new();
    for _ in 0..4 {
        outcomes.push(client.malloc(4096));
    }
    outcomes.push(client.device_count().map(|n| n as u64));
    let trace = plan.lock().trace_string();
    assert!(trace.contains("corrupt-request"), "{trace}");

    // The script is exhausted: the wire is clean and the stack still
    // serves correct results.
    assert_eq!(client.device_count().unwrap(), 4);
}

/// Acceptance criterion: under a reset-and-retry schedule, non-idempotent
/// calls (cudaMalloc here) execute exactly once server-side — the replay
/// cache serves the retransmission — and the client completes every call.
#[test]
fn reset_and_retry_runs_non_idempotent_calls_exactly_once() {
    let setup = SimSetup::new();
    let replay = Arc::new(ReplayCache::default());
    setup.rpc.set_replay_cache(Arc::clone(&replay));
    // op 0: malloc #1 request arrives and executes; op 1: its reply is
    // dropped → same-xid retransmission must hit the replay cache.
    // op 4: malloc #2 request dies with a connection reset → reconnect and
    // retransmit; the server never saw it, so it executes once.
    // op 8: a reply is duplicated → the spare must be drained as stale.
    let plan = FaultPlan::scripted(vec![
        (1, Fault::DropReply),
        (4, Fault::ResetOnSend),
        (8, Fault::DuplicateReply),
    ])
    .into_shared();
    let env = EnvConfig::Unikraft;
    let mut client = setup.chaos_client(env, &plan);
    harden(&mut client, &setup, env, &plan);

    let baseline = client.mem_get_info().unwrap().free;
    let p1 = client.malloc(8192).unwrap();
    let p2 = client.malloc(8192).unwrap();
    let p3 = client.malloc(8192).unwrap();
    assert!(p1 != p2 && p2 != p3 && p1 != p3, "a malloc ran twice");
    client.memcpy_htod(p1, &[0xA5; 64]).unwrap();
    assert_eq!(client.memcpy_dtoh(p1, 64).unwrap(), vec![0xA5; 64]);
    for p in [p1, p2, p3] {
        client.free(p).unwrap();
    }
    assert_eq!(
        client.mem_get_info().unwrap().free,
        baseline,
        "retransmitted malloc leaked — executed more than once"
    );

    // Telemetry: the dropped reply was answered from the replay cache, the
    // reset forced one reconnect, and the duplicated reply was drained.
    let cache = replay.stats();
    assert!(cache.hits >= 1, "no replay-cache hit: {cache:?}");
    let stats = client.rpc().stats();
    assert!(stats.retries >= 2, "stats: {stats:?}");
    assert_eq!(stats.reconnects, 1, "stats: {stats:?}");
    assert!(stats.stale_replies >= 1, "stats: {stats:?}");

    // The trace names every decision for the postmortem.
    let trace = plan.lock().trace_string();
    assert!(trace.contains("rep:drop-reply"), "{trace}");
    assert!(trace.contains("req:reset"), "{trace}");
    assert!(trace.contains("rep:duplicate-reply"), "{trace}");
}

/// Per-call deadlines: a connected but silent server must not hang the
/// client; the pooled read path surfaces a typed timeout.
#[test]
fn per_call_deadline_fires_on_a_silent_server() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let hold = std::thread::spawn(move || {
        // Accept, then never reply.
        let conn = listener.accept();
        std::thread::sleep(Duration::from_millis(500));
        drop(conn);
    });
    let t = TcpTransport::connect(addr).unwrap();
    let mut rpc = RpcClient::new(
        Box::new(t),
        cricket_repro::proto::CRICKET_CUDA,
        cricket_repro::proto::CRICKET_V1,
    );
    rpc.set_call_timeout(Some(Duration::from_millis(60)))
        .unwrap();
    let start = Instant::now();
    let err = rpc
        .call_raw(cricket_repro::proto::cricket_v1::RPC_NULL, |_enc| {})
        .unwrap_err();
    assert!(matches!(err, RpcError::TimedOut), "got {err:?}");
    assert!(
        start.elapsed() < Duration::from_millis(400),
        "deadline overshot: {:?}",
        start.elapsed()
    );
    hold.join().unwrap();
}

/// TCP server hardening: when a client vanishes mid-session, its vGPU
/// allocations and streams are reclaimed by the per-connection cleanup.
#[test]
fn tcp_session_cleanup_reclaims_vanished_clients_resources() {
    let server = cricket_repro::server::CricketServer::a100();
    let (handle, _replay) = serve_tcp_sessions(Arc::clone(&server), "127.0.0.1:0").unwrap();
    let addr = handle.addr().to_string();

    let mut watcher = CricketClient::new(
        Box::new(TcpTransport::connect(&addr).unwrap()),
        cricket_repro::client::env::ClientFlavor::RustRpcLib,
        None,
    );
    let baseline = watcher.mem_get_info().unwrap().free;

    {
        let mut doomed = CricketClient::new(
            Box::new(TcpTransport::connect(&addr).unwrap()),
            cricket_repro::client::env::ClientFlavor::RustRpcLib,
            None,
        );
        let ptr = doomed.malloc(1 << 20).unwrap();
        doomed.memcpy_htod(ptr, &[1; 256]).unwrap();
        let _stream = doomed.stream_create().unwrap();
        assert!(watcher.mem_get_info().unwrap().free < baseline);
        // The client vanishes without freeing anything.
        drop(doomed);
    }

    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if watcher.mem_get_info().unwrap().free == baseline {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "server never reclaimed the vanished session's memory"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.shutdown();
}

/// TCP resilience end to end: a chaos transport over real TCP, with the
/// reconnector dialing the server again. The shared replay cache keeps
/// retransmitted non-idempotent calls exactly-once across connections.
#[test]
fn tcp_reset_and_retry_with_session_server() {
    let server = cricket_repro::server::CricketServer::a100();
    let (handle, replay) = serve_tcp_sessions(Arc::clone(&server), "127.0.0.1:0").unwrap();
    let addr = handle.addr().to_string();

    let plan =
        FaultPlan::scripted(vec![(1, Fault::DropReply), (4, Fault::ResetOnSend)]).into_shared();
    let mut client = CricketClient::new(
        Box::new(FaultyTransport::new(
            Box::new(TcpTransport::connect(&addr).unwrap()),
            Arc::clone(&plan),
        )),
        cricket_repro::client::env::ClientFlavor::RustRpcLib,
        None,
    );
    {
        let dial = addr.clone();
        let plan2 = Arc::clone(&plan);
        let rpc = client.rpc();
        rpc.set_credential(OpaqueAuth::client_token(0x7C9_0002));
        rpc.set_retry_policy(RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_micros(200),
            max_delay: Duration::from_millis(5),
            retry_non_idempotent: true,
        });
        rpc.set_call_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        rpc.set_reconnect(move || {
            Ok(Box::new(FaultyTransport::new(
                Box::new(TcpTransport::connect(&dial)?),
                Arc::clone(&plan2),
            )))
        });
    }

    let _p1 = client.malloc(4096).unwrap(); // reply dropped → replay hit
    let p2 = client.malloc(4096).unwrap(); // reset → reconnect, fresh session
    client.memcpy_htod(p2, &[7; 32]).unwrap();
    assert_eq!(client.memcpy_dtoh(p2, 32).unwrap(), vec![7; 32]);

    assert!(replay.stats().hits >= 1, "{:?}", replay.stats());
    assert_eq!(client.rpc().stats().reconnects, 1);
    handle.shutdown();
}
