//! Wire efficiency round 2: multi-connection striping and sparse payload
//! encoding, end-to-end through the full client↔server stack and under
//! the chaos seed matrix (same fixed seeds as `tests/chaos.rs`).

use cricket_repro::client::sim::SimSetup;
use cricket_repro::oncrpc::{
    telemetry, FaultConfig, FaultPlan, FaultyTransport, OpaqueAuth, ReplayCache, RetryPolicy,
    SharedFaultPlan,
};
use cricket_repro::prelude::*;
use cricket_repro::server::SimTransport;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// The fixed fault matrix exercised by `ci.sh wire2`.
const CI_SEEDS: [u64; 6] = [1, 7, 42, 0xC41C_4E71, 0xDEAD_BEEF, 20_230_915];

/// Wire telemetry counters are process-global; tests that assert on their
/// deltas serialize here so a concurrently running transfer cannot skew a
/// compression ratio.
fn telemetry_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// A payload with no zero byte anywhere — the sparse codec must never win
/// on it, so it isolates the striping path.
fn dense(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i % 250) + 1) as u8).collect()
}

/// A payload with exactly one literal page in `period`, the rest zero.
fn sparse_payload(pages: usize, period: usize) -> Vec<u8> {
    let mut v = vec![0u8; pages * 4096];
    for (i, chunk) in v.chunks_mut(4096).enumerate() {
        if period != 0 && i % period == 0 {
            chunk.fill(0xC7);
        }
    }
    v
}

/// Harden one RPC lane the same way `tests/chaos.rs` hardens a client:
/// retries with capped backoff (non-idempotent included — the replay cache
/// makes them safe), a short deadline, and a reconnector that continues
/// the same per-lane fault schedule.
fn harden_lane(
    lane: &mut cricket_repro::oncrpc::RpcClient,
    setup: &SimSetup,
    env: EnvConfig,
    plan: &SharedFaultPlan,
) {
    lane.set_retry_policy(RetryPolicy {
        max_attempts: 20,
        base_delay: Duration::from_micros(50),
        max_delay: Duration::from_millis(1),
        retry_non_idempotent: true,
    });
    lane.set_call_timeout(Some(Duration::from_millis(40)))
        .unwrap();
    let rpc_srv = Arc::clone(&setup.rpc);
    let clock = Arc::clone(&setup.clock);
    let plan = Arc::clone(plan);
    lane.set_reconnect(move || {
        let fresh = SimTransport::new(Arc::clone(&rpc_srv), env.guest(), Arc::clone(&clock));
        Ok(Box::new(FaultyTransport::new(
            Box::new(fresh),
            Arc::clone(&plan),
        )))
    });
}

// ---------------------------------------------------------------------
// Striping
// ---------------------------------------------------------------------

/// A striped round trip is byte-identical to the unstriped transfer of the
/// same payload, and actually rode the stripe path.
#[test]
fn striped_transfer_matches_unstriped_byte_for_byte() {
    let _t = telemetry_lock();
    let data = dense(1 << 20);

    let setup = SimSetup::new();
    let mut striped = setup.striped_client(EnvConfig::RustyHermit, 4);
    striped.set_stripe_threshold(64 * 1024);
    let before = telemetry::wire_snapshot();
    let p = striped.malloc(data.len() as u64).unwrap();
    striped.memcpy_htod(p, &data).unwrap();
    let back_striped = striped.memcpy_dtoh(p, data.len() as u64).unwrap();
    striped.free(p).unwrap();
    let delta = telemetry::wire_snapshot().since(&before);
    // 1 MiB at the default 256 KiB stripe length, both directions.
    assert_eq!(delta.stripes_sent, 8, "copies did not ride the stripe path");

    let setup2 = SimSetup::new();
    let mut plain = setup2.client(EnvConfig::RustyHermit);
    let p = plain.malloc(data.len() as u64).unwrap();
    plain.memcpy_htod(p, &data).unwrap();
    let back_plain = plain.memcpy_dtoh(p, data.len() as u64).unwrap();
    plain.free(p).unwrap();

    assert_eq!(back_striped, data);
    assert_eq!(back_plain, data);
    assert_eq!(back_striped, back_plain);
}

/// Copies below the stripe threshold keep the single-connection fast path
/// even with a pool attached.
#[test]
fn small_ops_bypass_the_stripe_pool() {
    let _t = telemetry_lock();
    let setup = SimSetup::new();
    let mut client = setup.striped_client(EnvConfig::RustyHermit, 4);
    client.set_stripe_threshold(1 << 20);
    let data = dense(32 * 1024);
    let before = telemetry::wire_snapshot();
    let p = client.malloc(data.len() as u64).unwrap();
    client.memcpy_htod(p, &data).unwrap();
    assert_eq!(client.memcpy_dtoh(p, data.len() as u64).unwrap(), data);
    client.free(p).unwrap();
    let delta = telemetry::wire_snapshot().since(&before);
    assert_eq!(delta.stripes_sent, 0, "sub-threshold op was striped");
}

/// Four lanes overlap their wire time in the virtual-time model: a large
/// wire-bound copy completes well over 1.5x faster than single-connection.
#[test]
fn striping_beats_single_connection_on_large_copies() {
    let bytes = 8 << 20;
    let data = dense(bytes);

    let time_one = |lanes: Option<usize>| -> u64 {
        let setup = SimSetup::new();
        let mut client = match lanes {
            Some(n) => setup.striped_client(EnvConfig::RustyHermit, n),
            None => setup.client(EnvConfig::RustyHermit),
        };
        let p = client.malloc(bytes as u64).unwrap();
        let t0 = setup.clock.now_ns();
        client.memcpy_htod(p, &data).unwrap();
        let dt = setup.clock.now_ns() - t0;
        client.free(p).unwrap();
        dt
    };

    let plain_ns = time_one(None);
    let striped_ns = time_one(Some(4));
    let speedup = plain_ns as f64 / striped_ns as f64;
    assert!(
        speedup >= 1.5,
        "4-lane striping speedup {speedup:.2}x (plain {plain_ns} ns, striped {striped_ns} ns)"
    );
}

/// The chaos matrix: striped transfers with per-lane fault schedules
/// (drops, duplicates, resets, truncations) must reassemble byte-identically
/// and apply every write stripe exactly once — asserted against the
/// server's `bytes_in`, which a duplicated stripe would double-count.
#[test]
fn striped_transfers_survive_the_chaos_matrix_exactly_once() {
    for seed in CI_SEEDS {
        let setup = SimSetup::new();
        let replay = Arc::new(ReplayCache::default());
        setup.rpc.set_replay_cache(Arc::clone(&replay));
        let env = EnvConfig::RustyHermit;

        let plans: Vec<SharedFaultPlan> = (0..4)
            .map(|lane| {
                let lane_seed = seed ^ (lane as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                FaultPlan::from_seed_with(lane_seed, FaultConfig::lossy()).into_shared()
            })
            .collect();
        let mut pool = setup.stripe_pool_with(env, 4, |t, i| {
            Box::new(FaultyTransport::new(t, Arc::clone(&plans[i])))
        });
        pool.set_credential(OpaqueAuth::client_token(0xC11E_0002));
        for (i, lane) in pool.lanes_mut().iter_mut().enumerate() {
            harden_lane(lane, &setup, env, &plans[i]);
        }

        // The control-plane client stays clean; only the stripes face chaos.
        let mut client = setup.client(env);
        client.enable_striping(pool);
        client.set_stripe_threshold(64 * 1024);
        client.set_sparse(false); // isolate the striping path

        let data = dense(512 * 1024);
        let p = client.malloc(data.len() as u64).unwrap();
        client.server_reset_stats().unwrap();
        client.memcpy_htod(p, &data).unwrap();
        let stats = client.server_stats().unwrap();
        assert_eq!(
            stats.bytes_in,
            data.len() as u64,
            "seed {seed}: write stripes were not exactly-once"
        );
        let back = client.memcpy_dtoh(p, data.len() as u64).unwrap();
        assert_eq!(back, data, "seed {seed}: striped reassembly corrupted");
        client.free(p).unwrap();
    }
}

// ---------------------------------------------------------------------
// Sparse encoding
// ---------------------------------------------------------------------

/// A 90%-zero payload travels sparse (≥5x fewer wire bytes), lands
/// byte-identical in device memory, and is accounted at its raw length.
#[test]
fn sparse_payloads_shrink_the_wire_and_land_byte_identical() {
    let _t = telemetry_lock();
    let setup = SimSetup::new();
    let mut client = setup.client(EnvConfig::RustyHermit);
    let data = sparse_payload(640, 10); // 2.5 MiB, one literal page in ten

    let before = telemetry::wire_snapshot();
    let p = client.malloc(data.len() as u64).unwrap();
    client.server_reset_stats().unwrap();
    client.memcpy_htod(p, &data).unwrap();
    let delta = telemetry::wire_snapshot().since(&before);
    assert!(delta.sparse_pages_elided >= 500, "{delta:?}");
    assert!(
        delta.wire_bytes * 5 <= delta.raw_bytes,
        "90%-zero payload must shrink ≥5x: {delta:?}"
    );
    let stats = client.server_stats().unwrap();
    assert_eq!(
        stats.bytes_in,
        data.len() as u64,
        "accounting counts raw bytes"
    );
    assert_eq!(client.memcpy_dtoh(p, data.len() as u64).unwrap(), data);
    client.free(p).unwrap();
}

/// Fully dense payloads keep the plain path: wire bytes equal raw bytes,
/// nothing elided.
#[test]
fn dense_payloads_keep_the_plain_path() {
    let _t = telemetry_lock();
    let setup = SimSetup::new();
    let mut client = setup.client(EnvConfig::RustyHermit);
    let data = dense(256 * 1024);
    let before = telemetry::wire_snapshot();
    let p = client.malloc(data.len() as u64).unwrap();
    client.memcpy_htod(p, &data).unwrap();
    let delta = telemetry::wire_snapshot().since(&before);
    assert_eq!(delta.sparse_pages_elided, 0);
    assert_eq!(delta.wire_bytes, delta.raw_bytes);
    assert_eq!(client.memcpy_dtoh(p, data.len() as u64).unwrap(), data);
    client.free(p).unwrap();
}

/// Sparse sub-ops ride command batches: with coalescing on, a mostly-zero
/// small copy is recorded (not sent eagerly), survives the flush, and
/// decodes byte-identical server-side.
#[test]
fn sparse_payloads_ride_command_batches() {
    let setup = SimSetup::new();
    let mut client = setup.client(EnvConfig::RustyHermit);
    client.enable_batching();
    let data = sparse_payload(3, 3); // 12 KiB, one literal page
    let p = client.malloc(data.len() as u64).unwrap();
    client.memcpy_htod(p, &data).unwrap();
    client.device_synchronize().unwrap(); // flush
    let stats = client.batch_stats().unwrap();
    assert_eq!(stats.ops_batched, 1, "sparse copy was not recorded");
    assert_eq!(client.memcpy_dtoh(p, data.len() as u64).unwrap(), data);
    client.free(p).unwrap();
}

/// Sparse transfers under the chaos matrix: the eager sparse call is
/// non-idempotent, so the replay cache must make retries exactly-once, and
/// the decoded payload must stay byte-identical.
#[test]
fn sparse_transfers_survive_the_chaos_matrix() {
    for seed in CI_SEEDS {
        let setup = SimSetup::new();
        let replay = Arc::new(ReplayCache::default());
        setup.rpc.set_replay_cache(Arc::clone(&replay));
        let env = EnvConfig::RustyHermit;
        let plan = FaultPlan::from_seed_with(seed, FaultConfig::lossy()).into_shared();
        let mut client = setup.chaos_client(env, &plan);
        client
            .rpc()
            .set_credential(OpaqueAuth::client_token(0xC11E_0003));
        harden_lane(client.rpc(), &setup, env, &plan);

        let data = sparse_payload(24, 4); // 96 KiB, 3/4 zero
        let p = client.malloc(data.len() as u64).unwrap();
        client.server_reset_stats().unwrap();
        client.memcpy_htod(p, &data).unwrap();
        let stats = client.server_stats().unwrap();
        assert_eq!(
            stats.bytes_in,
            data.len() as u64,
            "seed {seed}: sparse write not exactly-once"
        );
        assert_eq!(
            client.memcpy_dtoh(p, data.len() as u64).unwrap(),
            data,
            "seed {seed}: sparse payload corrupted"
        );
        client.free(p).unwrap();
    }
}

/// Striping and sparse compose with the rest of the stack: a striped
/// client with batching enabled runs a mixed workload and every readback
/// is correct.
#[test]
fn striping_sparse_and_batching_compose() {
    let setup = SimSetup::new();
    let mut client = setup.striped_client(EnvConfig::RustyHermit, 2);
    client.set_stripe_threshold(128 * 1024);
    client.enable_batching();

    let big_dense = dense(512 * 1024); // striped
    let big_sparse = sparse_payload(128, 8); // sparse (512 KiB, 1/8 literal)
    let small = dense(2 * 1024); // batch-inlined

    let p1 = client.malloc(big_dense.len() as u64).unwrap();
    let p2 = client.malloc(big_sparse.len() as u64).unwrap();
    let p3 = client.malloc(small.len() as u64).unwrap();
    client.memcpy_htod(p1, &big_dense).unwrap();
    client.memcpy_htod(p2, &big_sparse).unwrap();
    client.memcpy_htod(p3, &small).unwrap();
    client.device_synchronize().unwrap();
    assert_eq!(
        client.memcpy_dtoh(p1, big_dense.len() as u64).unwrap(),
        big_dense
    );
    assert_eq!(
        client.memcpy_dtoh(p2, big_sparse.len() as u64).unwrap(),
        big_sparse
    );
    assert_eq!(client.memcpy_dtoh(p3, small.len() as u64).unwrap(), small);
    for p in [p1, p2, p3] {
        client.free(p).unwrap();
    }
}
