//! Live session migration chaos suite.
//!
//! The contract under test: migrating a session between fleet shards via
//! the streaming checkpoint (base snapshot → dirty deltas → fenced final
//! delta → cutover through the directory home + reconnect) is *invisible*
//! to the client. Every test phrases that as a byte-identity claim: the
//! full trace of client-visible replies (pointers, checksums, timings,
//! memory counters) from a run migrated mid-workload must equal the trace
//! of an unmigrated run, for every seed in the CI matrix — each seed picks
//! a different migration point (mid-copy, mid-kernel-pipeline, mid-batch,
//! mid-FFT, ...) and a different pre-copy round count.
//!
//! Also covered: a source shard crash mid-migration aborts cleanly (typed
//! `SourceLost`, staged destination state discarded, client fails over via
//! the ranked candidate list with no duplicated side effects), and a
//! 100-migration soak ping-ponging one hot session between two shards
//! leaks no scheduler sessions, device memory, or replay entries.

use cricket_repro::fleet::MigrateError;
use cricket_repro::oncrpc::{OpaqueAuth, RetryPolicy};
use cricket_repro::prelude::*;
use std::net::SocketAddr;
use std::time::Duration;

/// The same fixed seed matrix `ci.sh chaos` runs (see `tests/chaos.rs`).
const CI_SEEDS: [u64; 6] = [1, 7, 42, 0xC41C_4E71, 0xDEAD_BEEF, 20_230_915];

const CUFFT_C2C: i32 = 0x29;
const CUFFT_FORWARD: i32 = -1;
const CUFFT_INVERSE: i32 = 1;

/// Points in the workload where a migration may be injected.
const PHASES: usize = 8;

fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A hardened fleet client: token credential (replay dedupe + the
/// migration gate's identity), aggressive retries including non-idempotent
/// calls, a per-call deadline, and a reconnector that resolves the
/// session's *home* first — the path a migrated client takes to its new
/// shard.
fn hardened_client(endpoint: &Endpoint, token: u64) -> (CricketClient, SocketAddr) {
    let (t, addr) = endpoint.connect_transport_for(Some(token)).unwrap();
    let mut client = CricketClient::over(
        t,
        cricket_repro::client::env::ClientFlavor::RustRpcLib,
        None,
    );
    let ep = *endpoint;
    let rpc = client.rpc();
    rpc.set_credential(OpaqueAuth::client_token(token));
    rpc.set_retry_policy(RetryPolicy {
        max_attempts: 40,
        base_delay: Duration::from_micros(50),
        max_delay: Duration::from_millis(1),
        retry_non_idempotent: true,
    });
    rpc.set_call_timeout(Some(Duration::from_millis(250)))
        .unwrap();
    rpc.set_reconnect(move || {
        let (t, _addr) = ep.connect_transport_for(Some(token)).map_err(|e| {
            cricket_repro::oncrpc::RpcError::Io(std::io::Error::other(e.to_string()))
        })?;
        Ok(Box::new(t))
    });
    (client, addr)
}

/// The scripted GPU workload. Every client-visible reply lands in the
/// returned trace; `at(phase)` fires between steps so a caller can inject
/// a migration at a chosen point. Also doubles as teardown: by the end the
/// session has freed everything it created.
fn workload(c: &mut CricketClient, mut at: impl FnMut(usize)) -> Vec<String> {
    let mut tr = Vec::new();
    let mi = c.mem_get_info().unwrap();
    tr.push(format!("mem-start {} {}", mi.free, mi.total));

    // Two data buffers; `a` is uploaded now and read back much later, so
    // its bytes must survive whatever happens in between.
    let a = c.malloc(64 * 1024).unwrap();
    let b = c.malloc(64 * 1024).unwrap();
    tr.push(format!("malloc {a:#x} {b:#x}"));
    let pat_a: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
    c.memcpy_htod(a, &pat_a).unwrap();
    at(0); // mid-copy: upload shipped, readback pending

    let image = CubinBuilder::new()
        .kernel("saxpy", &[8, 8, 4, 4])
        .code(b"saxpy")
        .build(true);
    let module = c.module_load(&image).unwrap();
    let func = c.module_get_function(module, "saxpy").unwrap();
    tr.push(format!("module {module:#x} {func:#x}"));
    let x = c.malloc(512 * 4).unwrap();
    let y = c.malloc(512 * 4).unwrap();
    let xs: Vec<u8> = (0..512).flat_map(|_| 3.0f32.to_le_bytes()).collect();
    let ys: Vec<u8> = (0..512).flat_map(|_| 1.0f32.to_le_bytes()).collect();
    c.memcpy_htod(x, &xs).unwrap();
    c.memcpy_htod(y, &ys).unwrap();
    at(1); // module + operands staged

    let stream = c.stream_create().unwrap();
    let e1 = c.event_create().unwrap();
    let e2 = c.event_create().unwrap();
    c.event_record(e1, stream).unwrap();
    let params = ParamBuilder::new().ptr(y).ptr(x).f32(2.0).u32(512).build();
    c.launch_kernel(
        func,
        (2, 1, 1).into(),
        (256, 1, 1).into(),
        0,
        stream,
        &params,
    )
    .unwrap();
    at(2); // mid-pipeline: kernel launched, one event recorded

    c.event_record(e2, stream).unwrap();
    c.stream_synchronize(stream).unwrap();
    let ms = c.event_elapsed_ms(e1, e2).unwrap();
    tr.push(format!("elapsed {:08x}", ms.to_bits()));
    tr.push(format!(
        "saxpy {:016x}",
        fnv(&c.memcpy_dtoh(y, 512 * 4).unwrap())
    ));
    at(3); // timing read across the boundary

    // Coalesced batch: sub-ops recorded client-side must survive a
    // migration happening underneath and execute on the new shard.
    c.enable_batching();
    for i in 0..8u64 {
        c.memset(a + i * 256, i as i32 + 1, 256).unwrap();
    }
    let pat_b: Vec<u8> = (0..128u32).map(|i| (i as u8) ^ 0x5A).collect();
    c.memcpy_htod(b, &pat_b).unwrap();
    at(4); // mid-batch: nothing flushed yet

    tr.push(format!(
        "batch {:016x}",
        fnv(&c.memcpy_dtoh(a, 4096).unwrap())
    ));
    c.disable_batching().unwrap();

    // FFT: forward transform before the phase point, inverse after — the
    // plan handle and intermediate spectrum must both move.
    let plan = c.fft_plan_1d(256, CUFFT_C2C, 2).unwrap();
    let fin = c.malloc(2 * 256 * 8).unwrap();
    let fout = c.malloc(2 * 256 * 8).unwrap();
    let signal: Vec<u8> = (0..2 * 256u32)
        .flat_map(|i| {
            let re = ((i % 64) as f32) - 32.0;
            let im = 0.25 * i as f32;
            let mut bytes = re.to_le_bytes().to_vec();
            bytes.extend_from_slice(&im.to_le_bytes());
            bytes
        })
        .collect();
    c.memcpy_htod(fin, &signal).unwrap();
    c.fft_exec_c2c(plan, fin, fout, CUFFT_FORWARD).unwrap();
    at(5); // mid-FFT

    c.fft_exec_c2c(plan, fout, fin, CUFFT_INVERSE).unwrap();
    c.device_synchronize().unwrap();
    tr.push(format!(
        "fft {:016x}",
        fnv(&c.memcpy_dtoh(fin, 2 * 256 * 8).unwrap())
    ));
    c.fft_destroy(plan).unwrap();
    at(6);

    tr.push(format!(
        "final {:016x} {:016x}",
        fnv(&c.memcpy_dtoh(a, 4096).unwrap()),
        fnv(&c.memcpy_dtoh(b, 128).unwrap())
    ));
    c.event_destroy(e1).unwrap();
    c.event_destroy(e2).unwrap();
    c.stream_destroy(stream).unwrap();
    c.module_unload(module).unwrap();
    for p in [a, b, x, y, fin, fout] {
        c.free(p).unwrap();
    }
    at(7); // empty session: migration of nothing must also be invisible

    let mi = c.mem_get_info().unwrap();
    tr.push(format!("mem-end {} {}", mi.free, mi.total));
    tr
}

/// The workload on a two-shard fleet with no migration: the reference
/// trace every migrated run must reproduce byte for byte.
fn baseline_run() -> Vec<String> {
    let fleet = FleetBuilder::new(2)
        .heartbeat(Duration::from_secs(3600))
        .launch()
        .unwrap();
    let endpoint = Endpoint::directory(fleet.dir_addr()).unwrap();
    let (mut client, _addr) = hardened_client(&endpoint, 0xBA5E_11AE);
    let trace = workload(&mut client, |_| {});
    drop(client);
    fleet.shutdown();
    trace
}

/// The workload with one live migration injected at the seed-chosen phase,
/// with a seed-chosen number of pre-copy rounds. Returns the trace and the
/// migration's report.
fn migrated_run(seed: u64) -> (Vec<String>, cricket_repro::fleet::MigrationReport, usize) {
    let fleet = FleetBuilder::new(2)
        .heartbeat(Duration::from_secs(3600))
        .launch()
        .unwrap();
    let endpoint = Endpoint::directory(fleet.dir_addr()).unwrap();
    let token = 0xA110_0000 ^ seed;
    let (mut client, addr) = hardened_client(&endpoint, token);
    let from = fleet.shard_by_port(u32::from(addr.port())).unwrap();
    let to = (from + 1) % fleet.len();
    let phase = (seed % PHASES as u64) as usize;
    let rounds = (seed % 3) as u32 + 1;

    let mut report = None;
    let trace = workload(&mut client, |p| {
        if p == phase && report.is_none() {
            let r = fleet
                .migrate_session(token, from, to, rounds)
                .unwrap_or_else(|e| panic!("seed {seed}: migration at phase {p} failed: {e}"));
            // Zero post-cutover source state: no session, no memory, no
            // replay entries, no token binding.
            let src = fleet.shard(from).unwrap();
            let lr = src.server().load_report();
            assert_eq!(lr.sessions, 0, "seed {seed}: source kept a session");
            assert_eq!(
                lr.free_mem, lr.total_mem,
                "seed {seed}: source leaked device memory"
            );
            assert_eq!(
                src.replay().client_count(),
                0,
                "seed {seed}: source kept replay entries"
            );
            assert!(src.server().session_of_token(token).is_none());
            report = Some(r);
        }
    });
    let report = report.expect("workload never reached the migration phase");
    assert_eq!(report.rounds, rounds, "seed {seed}");
    assert!(report.base_bytes > 0, "seed {seed}: empty base snapshot");
    drop(client);
    fleet.shutdown();
    (trace, report, phase)
}

/// The tentpole acceptance test: for every CI seed, a run migrated at that
/// seed's phase produces a byte-identical client-visible trace to the
/// unmigrated baseline, and the source shard retains zero session state.
#[test]
fn migration_matrix_traces_are_byte_identical() {
    let baseline = baseline_run();
    assert!(baseline.len() >= 8, "workload produced a trivial trace");
    for seed in CI_SEEDS {
        let (trace, report, phase) = migrated_run(seed);
        assert_eq!(
            trace, baseline,
            "seed {seed}: client-visible trace diverged (migration at phase {phase}, report {report:?})"
        );
    }
}

/// Crash chaos: the source shard dies between pre-copy rounds. The driver
/// reports a typed `SourceLost`, the abort discards the destination's
/// staged state, and the client fails over through the ranked candidate
/// list to the surviving shard as a fresh session — with no duplicated
/// side effects.
#[test]
fn killed_source_mid_migration_aborts_cleanly_and_client_fails_over() {
    for seed in CI_SEEDS {
        let mut fleet = FleetBuilder::new(2)
            .heartbeat(Duration::from_secs(3600))
            .launch()
            .unwrap();
        let endpoint = Endpoint::directory(fleet.dir_addr()).unwrap();
        let token = 0xFA11_0000 ^ seed;
        let (mut client, addr) = hardened_client(&endpoint, token);
        let from = fleet.shard_by_port(u32::from(addr.port())).unwrap();
        let to = (from + 1) % fleet.len();

        let p = client.malloc(8192).unwrap();
        client.memcpy_htod(p, &[0xAB; 512]).unwrap();

        let mut mig = fleet.begin_migration(token, from, to).unwrap();
        mig.round(&fleet).unwrap();
        assert!(fleet.kill_shard(from), "seed {seed:#x}");
        let err = match mig.round(&fleet) {
            Err(e) => e,
            Ok(_) => panic!("seed {seed:#x}: delta round succeeded on a dead source"),
        };
        assert!(
            matches!(err, MigrateError::SourceLost(_)),
            "seed {seed:#x}: wrong error: {err}"
        );
        mig.abort(&fleet);

        // The abort freed everything the base + first delta staged.
        let dst = fleet.shard(to).unwrap();
        let lr = dst.server().load_report();
        assert_eq!(
            lr.free_mem, lr.total_mem,
            "seed {seed:#x}: aborted migration leaked staged memory on the destination"
        );

        // The crash severed the client's connection, so it re-resolves
        // through the directory: the crashed shard's stale entry is still
        // listed (no deregistration) but its listener is dead, so the
        // ranked-candidate walk skips the corpse and lands on the
        // survivor as a fresh session. The crashed shard's state is gone,
        // so this is loss, not duplication — the survivor must see
        // exactly the retried calls, once each.
        drop(client);
        let (mut client, addr2) = hardened_client(&endpoint, token);
        assert_eq!(
            fleet.shard_by_port(u32::from(addr2.port())),
            Some(to),
            "seed {seed:#x}: failover landed somewhere other than the survivor"
        );
        let p2 = client.malloc(8192).unwrap();
        client.memcpy_htod(p2, &[0xCD; 256]).unwrap();
        assert_eq!(
            client.memcpy_dtoh(p2, 256).unwrap(),
            vec![0xCD; 256],
            "seed {seed:#x}"
        );
        let lr = dst.server().load_report();
        assert_eq!(lr.sessions, 1, "seed {seed:#x}");
        client.free(p2).unwrap();
        let lr = dst.server().load_report();
        assert_eq!(
            lr.free_mem, lr.total_mem,
            "seed {seed:#x}: a retried call executed twice (leaked duplicate block)"
        );
        drop(client);
        fleet.shutdown();
    }
}

/// Soak: 100 sequential migrations ping-ponging one hot session between
/// two shards. After every hop the old home must hold zero sessions, zero
/// allocated memory, and zero replay entries; the session's data must
/// survive all 100 hops intact.
#[test]
fn soak_hundred_migrations_leak_nothing() {
    let fleet = FleetBuilder::new(2)
        .heartbeat(Duration::from_secs(3600))
        .launch()
        .unwrap();
    let endpoint = Endpoint::directory(fleet.dir_addr()).unwrap();
    let token = 0x50AC_0001;
    let (mut client, addr) = hardened_client(&endpoint, token);
    let mut cur = fleet.shard_by_port(u32::from(addr.port())).unwrap();

    let p = client.malloc(32 * 1024).unwrap();
    let pat: Vec<u8> = (0..1024u32).map(|i| (i * 7 % 256) as u8).collect();
    client.memcpy_htod(p, &pat).unwrap();

    for i in 0..100u32 {
        let next = (cur + 1) % fleet.len();
        let report = fleet
            .migrate_session(token, cur, next, 1)
            .unwrap_or_else(|e| panic!("migration {i} ({cur}→{next}) failed: {e}"));
        assert!(report.streamed_bytes() > 0, "migration {i}");

        let src = fleet.shard(cur).unwrap();
        let lr = src.server().load_report();
        assert_eq!(lr.sessions, 0, "migration {i}: leaked scheduler session");
        assert_eq!(
            lr.free_mem, lr.total_mem,
            "migration {i}: leaked device memory"
        );
        assert_eq!(
            src.replay().client_count(),
            0,
            "migration {i}: leaked replay entries"
        );

        // Keep the session hot: dirty part of the block (so the next
        // migration ships a real delta) and verify the rest survived.
        client.memset(p, (i & 0x7f) as i32, 512).unwrap();
        let back = client.memcpy_dtoh(p, 1024).unwrap();
        assert_eq!(
            &back[512..],
            &pat[512..1024],
            "migration {i}: session data lost in flight"
        );
        cur = next;
    }

    client.free(p).unwrap();
    for idx in 0..fleet.len() {
        let lr = fleet.shard(idx).unwrap().server().load_report();
        assert_eq!(
            lr.free_mem, lr.total_mem,
            "shard {idx} holds memory after the soak"
        );
    }
    drop(client);
    fleet.shutdown();
}

/// Liveness under true concurrency: the client hammers the fleet from its
/// own thread while the driver ping-pongs its session between shards. The
/// eviction drain (in-flight calls complete before the final snapshot)
/// plus retry/reconnect hardening must keep every call correct — each
/// iteration verifies its own writes — and nothing may leak at the end.
#[test]
fn migration_under_concurrent_client_load_loses_nothing() {
    let fleet = FleetBuilder::new(2)
        .heartbeat(Duration::from_secs(3600))
        .launch()
        .unwrap();
    let endpoint = Endpoint::directory(fleet.dir_addr()).unwrap();
    let token = 0xC0C0_0007;
    let (mut client, addr) = hardened_client(&endpoint, token);
    let start = fleet.shard_by_port(u32::from(addr.port())).unwrap();

    std::thread::scope(|s| {
        let fleet = &fleet;
        s.spawn(move || {
            for i in 0..150u32 {
                let p = client.malloc(4096).unwrap();
                let fill = vec![(i % 251) as u8; 512];
                client.memcpy_htod(p, &fill).unwrap();
                assert_eq!(
                    client.memcpy_dtoh(p, 512).unwrap(),
                    fill,
                    "iteration {i}: write lost across a concurrent migration"
                );
                client.free(p).unwrap();
            }
            drop(client);
        });

        let mut cur = start;
        for m in 0..6 {
            // The session only exists on `cur` once the client's next call
            // has re-bound there; retry until the planner sees it.
            loop {
                match fleet.migrate_session(token, cur, (cur + 1) % fleet.len(), 1) {
                    Ok(_) => break,
                    Err(MigrateError::Plan(_)) => std::thread::sleep(Duration::from_micros(200)),
                    Err(e) => panic!("concurrent migration {m} failed: {e}"),
                }
            }
            cur = (cur + 1) % fleet.len();
        }
    });

    for idx in 0..fleet.len() {
        let lr = fleet.shard(idx).unwrap().server().load_report();
        assert_eq!(
            lr.free_mem, lr.total_mem,
            "shard {idx} leaked under concurrent migration"
        );
    }
    fleet.shutdown();
}
