//! Vendored stand-in for the `criterion` API surface the workspace's benches
//! use. The workspace builds offline, so the real crates-io criterion is not
//! available. Timing is plain wall-clock: a short warm-up, then batches of
//! iterations until the measurement window closes, reporting mean and best
//! per-iteration time (plus throughput when configured). No statistics,
//! plotting, or baseline comparison.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    measurement: Duration,
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement: Duration::from_millis(400),
            default_samples: 50,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&id.0, self.measurement, None, f);
        self
    }
}

/// A set of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration work amount used for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; sampling here is time-based.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.default_samples = n;
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    /// Benchmark one function within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.0),
            self.criterion.measurement,
            self.throughput.clone(),
            f,
        );
        self
    }

    /// Benchmark one function with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(
            &label,
            self.criterion.measurement,
            self.throughput.clone(),
            |b| f(b, input),
        );
        self
    }

    /// No-op; groups need no explicit teardown here.
    pub fn finish(self) {}
}

/// Identifier for one benchmark, optionally parameterized.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self(format!("{}/{}", name.into(), parameter))
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Work performed per iteration, for throughput reporting.
#[derive(Debug, Clone)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    measurement: Duration,
    /// (mean, best) seconds per iteration, filled by `iter`.
    result: Option<(f64, f64)>,
}

impl Bencher {
    /// Time `f`, running it repeatedly until the measurement window closes.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch-size calibration: aim for ~1ms batches.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 1 << 20) as u64;

        let mut total_iters = 0u64;
        let mut total_time = Duration::ZERO;
        let mut best = f64::INFINITY;
        while total_time < self.measurement {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let dt = t.elapsed();
            best = best.min(dt.as_secs_f64() / batch as f64);
            total_iters += batch;
            total_time += dt;
        }
        self.result = Some((total_time.as_secs_f64() / total_iters as f64, best));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    measurement: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        measurement,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((mean, best)) => {
            let rate = match throughput {
                Some(Throughput::Bytes(n)) => {
                    format!("  {:>10.1} MiB/s", n as f64 / mean / (1 << 20) as f64)
                }
                Some(Throughput::Elements(n)) => {
                    format!("  {:>10.1} elem/s", n as f64 / mean)
                }
                None => String::new(),
            };
            println!(
                "  {label:<40} mean {:>12}  best {:>12}{rate}",
                fmt_time(mean),
                fmt_time(best)
            );
        }
        None => println!("  {label:<40} (no iter() call)"),
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Define a function running the listed benchmarks in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export for benches importing `criterion::black_box`.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion {
            measurement: Duration::from_millis(5),
            default_samples: 5,
        };
        let mut g = c.benchmark_group("demo");
        g.throughput(Throughput::Bytes(1024));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("sized", 8usize), &8usize, |b, &n| {
            b.iter(|| vec![0u8; n])
        });
        g.finish();
    }
}
