//! Minimal `crossbeam-channel`-compatible channels backed by `std::sync::mpsc`.
//!
//! The workspace builds offline, so the real crates-io crate is not
//! available. Only the surface the workspace uses is provided: `unbounded()`
//! and `bounded()` with cloneable senders, blocking `recv()`, and
//! non-blocking `try_send()`/`try_recv()`.

use std::fmt;
use std::sync::mpsc;

/// Error returned by [`Sender::send`] when the receiver has been dropped.
/// The unsent message is handed back.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when all senders have been dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// All senders were dropped and the channel is drained.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived before the deadline.
    Timeout,
    /// All senders were dropped and the channel is drained.
    Disconnected,
}

/// Error returned by [`Sender::try_send`].
#[derive(Debug)]
pub enum TrySendError<T> {
    /// The bounded channel is at capacity; the unsent message is returned.
    Full(T),
    /// The receiver was dropped; the unsent message is returned.
    Disconnected(T),
}

enum SenderInner<T> {
    Unbounded(mpsc::Sender<T>),
    Bounded(mpsc::SyncSender<T>),
}

/// The sending half of a channel.
pub struct Sender<T>(SenderInner<T>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Self(match &self.0 {
            SenderInner::Unbounded(tx) => SenderInner::Unbounded(tx.clone()),
            SenderInner::Bounded(tx) => SenderInner::Bounded(tx.clone()),
        })
    }
}

impl<T> Sender<T> {
    /// Send a message, failing only if the receiver is gone. On a bounded
    /// channel this blocks while the channel is full.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        match &self.0 {
            SenderInner::Unbounded(tx) => tx.send(msg).map_err(|mpsc::SendError(m)| SendError(m)),
            SenderInner::Bounded(tx) => tx.send(msg).map_err(|mpsc::SendError(m)| SendError(m)),
        }
    }

    /// Non-blocking send: fails with [`TrySendError::Full`] instead of
    /// blocking when a bounded channel is at capacity.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        match &self.0 {
            SenderInner::Unbounded(tx) => tx
                .send(msg)
                .map_err(|mpsc::SendError(m)| TrySendError::Disconnected(m)),
            SenderInner::Bounded(tx) => tx.try_send(msg).map_err(|e| match e {
                mpsc::TrySendError::Full(m) => TrySendError::Full(m),
                mpsc::TrySendError::Disconnected(m) => TrySendError::Disconnected(m),
            }),
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

/// The receiving half of an unbounded channel.
pub struct Receiver<T>(mpsc::Receiver<T>);

impl<T> Receiver<T> {
    /// Block until a message arrives or all senders are dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.0.recv().map_err(|_| RecvError)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.0.try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => TryRecvError::Empty,
            mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
        })
    }

    /// Block until a message arrives, all senders are dropped, or `timeout`
    /// elapses.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
        self.0.recv_timeout(timeout).map_err(|e| match e {
            mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
            mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
        })
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender(SenderInner::Unbounded(tx)), Receiver(rx))
}

/// Create a bounded channel holding at most `cap` in-flight messages;
/// `send` blocks and `try_send` fails with [`TrySendError::Full`] when the
/// channel is at capacity.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(cap);
    (Sender(SenderInner::Bounded(tx)), Receiver(rx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv(), Ok(7));
    }

    #[test]
    fn recv_errors_when_senders_dropped() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_when_receiver_dropped() {
        let (tx, rx) = unbounded();
        drop(rx);
        let err = tx.send(3u8).unwrap_err();
        assert_eq!(err.0, 3);
    }

    #[test]
    fn recv_timeout_times_out_and_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(11u32).unwrap();
        assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(5)), Ok(11));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn bounded_channel_applies_backpressure() {
        let (tx, rx) = bounded(2);
        tx.try_send(1u8).unwrap();
        tx.try_send(2u8).unwrap();
        assert!(matches!(tx.try_send(3u8), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3u8).unwrap();
        drop(rx);
        assert!(matches!(
            tx.try_send(4u8),
            Err(TrySendError::Disconnected(4))
        ));
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }
}
