//! Minimal `crossbeam-channel`-compatible channels backed by `std::sync::mpsc`.
//!
//! The workspace builds offline, so the real crates-io crate is not
//! available. Only the surface the workspace uses is provided: `unbounded()`
//! with cloneable senders and blocking `recv()`.

use std::fmt;
use std::sync::mpsc;

/// Error returned by [`Sender::send`] when the receiver has been dropped.
/// The unsent message is handed back.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when all senders have been dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// All senders were dropped and the channel is drained.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived before the deadline.
    Timeout,
    /// All senders were dropped and the channel is drained.
    Disconnected,
}

/// The sending half of an unbounded channel.
pub struct Sender<T>(mpsc::Sender<T>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Self(self.0.clone())
    }
}

impl<T> Sender<T> {
    /// Send a message, failing only if the receiver is gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

/// The receiving half of an unbounded channel.
pub struct Receiver<T>(mpsc::Receiver<T>);

impl<T> Receiver<T> {
    /// Block until a message arrives or all senders are dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.0.recv().map_err(|_| RecvError)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.0.try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => TryRecvError::Empty,
            mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
        })
    }

    /// Block until a message arrives, all senders are dropped, or `timeout`
    /// elapses.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
        self.0.recv_timeout(timeout).map_err(|e| match e {
            mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
            mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
        })
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender(tx), Receiver(rx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv(), Ok(7));
    }

    #[test]
    fn recv_errors_when_senders_dropped() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_when_receiver_dropped() {
        let (tx, rx) = unbounded();
        drop(rx);
        let err = tx.send(3u8).unwrap_err();
        assert_eq!(err.0, 3);
    }

    #[test]
    fn recv_timeout_times_out_and_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(11u32).unwrap();
        assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(5)), Ok(11));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }
}
