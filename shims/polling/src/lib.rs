//! Readiness polling over nonblocking TCP sockets, `std`-only.
//!
//! The workspace builds fully offline, so mio/epoll crates are not
//! available. This shim exposes the contract an event-driven server needs —
//! register sockets, block until at least one is readable (or a
//! [`Poller::notify`] wakeup arrives), suspend sources under backpressure —
//! and implements it with the only portable mechanism `std` offers:
//! a readiness *scan* (`TcpStream::peek` on nonblocking clones) paced by an
//! adaptive yield→sleep backoff. Under load the scan always finds work and
//! never sleeps; idle, it decays to a bounded sleep slice so a process with
//! hundreds of dormant connections stays quiet.
//!
//! A real deployment would swap the scan for `epoll`/`kqueue`/`io_uring`
//! behind the same API; everything above this crate is written against the
//! readiness contract, not the mechanism.

use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::io;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// One readiness observation from [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The key the source was registered under.
    pub key: usize,
    /// Data is available to read (or the peer hung up — reading yields the
    /// EOF/error, which is itself actionable).
    pub readable: bool,
    /// The peer closed or the socket errored; a read will not block.
    pub hup: bool,
}

struct Source {
    /// A second handle onto the socket used only for `peek`; the owner keeps
    /// reading on its own handle.
    probe: TcpStream,
    /// Suspended sources stay registered but produce no events
    /// (backpressure: the owner has stopped reading this connection).
    suspended: bool,
}

#[derive(Default)]
struct Registry {
    sources: HashMap<usize, Source>,
}

/// Waitable readiness poller. Clone-free: share it behind an `Arc`.
pub struct Poller {
    registry: Mutex<Registry>,
    /// Set by [`Poller::notify`]; consumed by the next [`Poller::wait`].
    notified: Mutex<bool>,
    cond: Condvar,
}

/// Backoff ladder for idle scans: pure yields first (cheap on a loaded
/// box — other runnable threads get the core), then sleeps growing to a cap.
const YIELD_ROUNDS: u32 = 8;
const SLEEP_MIN: Duration = Duration::from_micros(50);
const SLEEP_MAX: Duration = Duration::from_millis(1);

impl Poller {
    /// Create an empty poller.
    pub fn new() -> Self {
        Self {
            registry: Mutex::new(Registry::default()),
            notified: Mutex::new(false),
            cond: Condvar::new(),
        }
    }

    /// Register `stream` for readability under `key`. The stream is switched
    /// to nonblocking mode (the owner is expected to read it nonblocking);
    /// the poller keeps its own `try_clone` handle for probing.
    pub fn register(&self, stream: &TcpStream, key: usize) -> io::Result<()> {
        stream.set_nonblocking(true)?;
        let probe = stream.try_clone()?;
        let mut reg = self.registry.lock();
        reg.sources.insert(
            key,
            Source {
                probe,
                suspended: false,
            },
        );
        Ok(())
    }

    /// Remove `key` from the poller. Unknown keys are ignored.
    pub fn deregister(&self, key: usize) {
        self.registry.lock().sources.remove(&key);
    }

    /// Stop reporting events for `key` (the owner is backpressuring this
    /// source). The socket stays registered; kernel-side the TCP window
    /// closes as unread data accumulates.
    pub fn suspend(&self, key: usize) {
        if let Some(s) = self.registry.lock().sources.get_mut(&key) {
            s.suspended = true;
        }
    }

    /// Resume reporting events for `key` after [`Poller::suspend`].
    pub fn resume(&self, key: usize) {
        if let Some(s) = self.registry.lock().sources.get_mut(&key) {
            s.suspended = false;
        }
    }

    /// Number of registered (live) sources.
    pub fn len(&self) -> usize {
        self.registry.lock().sources.len()
    }

    /// Whether no sources are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Wake the current (or next) [`Poller::wait`] immediately, returning it
    /// with whatever events the scan finds. Called from other threads when
    /// out-of-band state changed: a new connection to adopt, a stalled
    /// session that drained, a shutdown request.
    pub fn notify(&self) {
        *self.notified.lock() = true;
        self.cond.notify_all();
    }

    /// Block until at least one registered source is readable, `notify` was
    /// called, or `timeout` elapses. Readiness events are appended to
    /// `events` (cleared first). Returns the number of events.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<usize> {
        events.clear();
        let deadline = Instant::now() + timeout;
        let mut idle_rounds: u32 = 0;
        loop {
            self.scan(events);
            if !events.is_empty() {
                // Consume a pending wakeup too: the caller will observe all
                // out-of-band state on this pass anyway.
                *self.notified.lock() = false;
                return Ok(events.len());
            }
            // No readiness: honor a notify() or back off.
            {
                let mut flag = self.notified.lock();
                if *flag {
                    *flag = false;
                    return Ok(0);
                }
                if Instant::now() >= deadline {
                    return Ok(0);
                }
                if idle_rounds >= YIELD_ROUNDS {
                    let exp = (idle_rounds - YIELD_ROUNDS).min(8);
                    let dur = (SLEEP_MIN * 2u32.saturating_pow(exp)).min(SLEEP_MAX);
                    // Sleep on the condvar so notify() still wakes us early.
                    let _ = self.cond.wait_for(&mut flag, dur);
                    if *flag {
                        *flag = false;
                        return Ok(0);
                    }
                }
            }
            if idle_rounds < YIELD_ROUNDS {
                std::thread::yield_now();
            }
            idle_rounds = idle_rounds.saturating_add(1);
        }
    }

    /// One pass over the registry: probe every active source.
    fn scan(&self, events: &mut Vec<Event>) {
        let reg = self.registry.lock();
        let mut probe_buf = [0u8; 1];
        for (&key, src) in reg.sources.iter() {
            if src.suspended {
                continue;
            }
            match src.probe.peek(&mut probe_buf) {
                Ok(0) => events.push(Event {
                    key,
                    readable: true,
                    hup: true,
                }),
                Ok(_) => events.push(Event {
                    key,
                    readable: true,
                    hup: false,
                }),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => events.push(Event {
                    key,
                    readable: true,
                    hup: true,
                }),
            }
        }
    }
}

impl Default for Poller {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller")
            .field("sources", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::sync::Arc;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn readable_when_peer_writes() {
        let (mut client, server) = pair();
        let poller = Poller::new();
        poller.register(&server, 7).unwrap();
        let mut events = Vec::new();
        // Nothing yet.
        poller.wait(&mut events, Duration::from_millis(5)).unwrap();
        assert!(events.is_empty());
        client.write_all(b"x").unwrap();
        poller.wait(&mut events, Duration::from_secs(2)).unwrap();
        assert_eq!(
            events,
            vec![Event {
                key: 7,
                readable: true,
                hup: false
            }]
        );
    }

    #[test]
    fn hup_when_peer_drops() {
        let (client, server) = pair();
        let poller = Poller::new();
        poller.register(&server, 1).unwrap();
        drop(client);
        let mut events = Vec::new();
        poller.wait(&mut events, Duration::from_secs(2)).unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].hup);
    }

    #[test]
    fn suspend_masks_events_until_resume() {
        let (mut client, server) = pair();
        let poller = Poller::new();
        poller.register(&server, 3).unwrap();
        client.write_all(b"data").unwrap();
        poller.suspend(3);
        let mut events = Vec::new();
        poller.wait(&mut events, Duration::from_millis(10)).unwrap();
        assert!(events.is_empty(), "suspended source reported readiness");
        poller.resume(3);
        poller.wait(&mut events, Duration::from_secs(2)).unwrap();
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn notify_wakes_an_idle_wait() {
        let poller = Arc::new(Poller::new());
        let p2 = Arc::clone(&poller);
        let waker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            p2.notify();
        });
        let mut events = Vec::new();
        let start = Instant::now();
        poller.wait(&mut events, Duration::from_secs(10)).unwrap();
        assert!(events.is_empty());
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "notify did not wake wait"
        );
        waker.join().unwrap();
    }

    #[test]
    fn deregister_stops_events() {
        let (mut client, server) = pair();
        let poller = Poller::new();
        poller.register(&server, 9).unwrap();
        client.write_all(b"y").unwrap();
        poller.deregister(9);
        let mut events = Vec::new();
        poller.wait(&mut events, Duration::from_millis(10)).unwrap();
        assert!(events.is_empty());
        assert!(poller.is_empty());
    }

    #[test]
    fn many_sources_report_independently() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new();
        let mut clients = Vec::new();
        let mut servers = Vec::new();
        for key in 0..16usize {
            let c = TcpStream::connect(addr).unwrap();
            let (s, _) = listener.accept().unwrap();
            poller.register(&s, key).unwrap();
            clients.push(c);
            servers.push(s);
        }
        clients[3].write_all(b"a").unwrap();
        clients[11].write_all(b"b").unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Duration::from_secs(2)).unwrap();
        let mut keys: Vec<usize> = events.iter().map(|e| e.key).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![3, 11]);
    }
}
