//! Collection strategies (`collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Anything usable as a length specification for [`vec`].
pub trait IntoSizeRange {
    /// Lower bound (inclusive) and upper bound (exclusive).
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end() + 1)
    }
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

/// `Vec<T>` with a length drawn from `size` and elements from `element`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    assert!(min < max, "empty size range for collection::vec");
    VecStrategy { element, min, max }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.range_u64(self.min as u64, self.max as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::from_name("collection");
        let s = vec(any::<u8>(), 3..7);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((3..7).contains(&v.len()), "len {}", v.len());
        }
    }

    #[test]
    fn nested_vec_composes() {
        let mut rng = TestRng::from_name("collection-nested");
        let s = vec(vec(any::<u8>(), 0..4), 1..3);
        let v = s.generate(&mut rng);
        assert!(!v.is_empty() && v.len() < 3);
        assert!(v.iter().all(|inner| inner.len() < 4));
    }
}
