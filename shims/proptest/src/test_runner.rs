//! Deterministic RNG and run configuration for the vendored proptest.

/// How many cases each property runs. Mirrors the field real proptest
/// exposes; everything else is fixed.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the suite quick while
        // still exercising the fragment/size boundaries the tests target.
        Self { cases: 64 }
    }
}

/// xorshift64* generator. Seeded from the test name so every run of a given
/// property sees the same sequence — reproducible locally and in CI.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            state: h | 1, // xorshift state must be non-zero
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant for test-input generation.
        self.next_u64() % bound
    }

    /// Uniform `u64` in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.below(hi - lo)
    }

    /// Uniform `i64` in `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi);
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add(self.below(span) as i64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    /// Uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("alpha");
        let mut b = TestRng::from_name("alpha");
        let mut c = TestRng::from_name("beta");
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let f = rng.range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.range_i64(-5, 5);
            assert!((-5..5).contains(&i));
        }
    }
}
