//! Option strategies (`option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy returned by [`of`].
pub struct OptionStrategy<S>(S);

/// `Option<T>` that is `Some` about three quarters of the time, matching
/// real proptest's default weighting.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy(inner)
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.0.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn of_generates_both_variants() {
        let mut rng = TestRng::from_name("option");
        let s = of(any::<u64>());
        let vals: Vec<_> = (0..100).map(|_| s.generate(&mut rng)).collect();
        assert!(vals.iter().any(|v| v.is_none()));
        assert!(vals.iter().any(|v| v.is_some()));
    }
}
