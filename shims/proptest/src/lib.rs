//! Vendored stand-in for the `proptest` API surface this workspace uses.
//!
//! The workspace builds offline, so the real crates-io `proptest` is not
//! available. This crate keeps the property tests runnable by providing the
//! same macros and strategy combinators over a deterministic xorshift RNG.
//! Differences from real proptest, accepted for the offline build:
//!
//! - **No shrinking.** A failing case reports the panic message with the
//!   generated inputs left to `Debug` formatting in the assertion text.
//! - **Deterministic seeding.** Each test function derives its seed from its
//!   own name, so runs are reproducible across machines and CI.
//! - **Regex strategies** support the subset the workspace's tests use:
//!   character classes with ranges, `\PC` (printable), and `{m,n}`/`{n}`/
//!   `*`/`+`/`?` quantifiers over single-character atoms.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::{Just, Strategy};

/// Generate one value per declared parameter and run the body `cases` times.
///
/// Supports the two real-proptest parameter forms the workspace uses:
/// `pat in strategy` (including `mut name in ...`) and `name: Type`
/// (shorthand for `name in any::<Type>()`), plus an optional leading
/// `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                let _ = case;
                $crate::__proptest_bind!(rng; ($($params)*); $body);
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident; (); $body:block) => { $body };
    ($rng:ident; (,); $body:block) => { $body };
    // `name: Type` — shorthand for `name in any::<Type>()`.
    ($rng:ident; ($name:ident : $ty:ty $(, $($rest:tt)*)?); $body:block) => {
        let $name: $ty = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(),
            &mut $rng,
        );
        $crate::__proptest_bind!($rng; ($($($rest)*)?); $body);
    };
    // `pat in strategy` — `in` is in the follow set of `:pat`.
    ($rng:ident; ($pat:pat in $strat:expr $(, $($rest:tt)*)?); $body:block) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; ($($($rest)*)?); $body);
    };
}

/// Assert within a property body (no shrink machinery — plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between several strategies producing the same value type.
/// All arms are boxed; weights are not supported (the workspace uses none).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
