//! Glob-import surface matching `proptest::prelude::*` usage.

pub use crate::arbitrary::{any, Arbitrary};
pub use crate::strategy::{BoxedStrategy, Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestRng};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

/// Alias module so `prop::collection::vec(..)` style paths work.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::string;
}
