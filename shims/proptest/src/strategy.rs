//! Core strategy trait and combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy {
            gen: Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// Delegation through references lets helpers pass `&strategy`.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Type-erased strategy (`Rc`-shared so it is cheaply cloneable).
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Uniform choice between boxed alternatives — backs `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from a non-empty list of alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.range_i64(self.start as i64, self.end as i64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                rng.range_i64(lo as i64, hi as i64 + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, i8, i16, i32, i64);

// u64/usize can exceed i64 — generate through the unsigned path.
macro_rules! wide_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.range_u64(self.start as u64, self.end as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                if lo as u64 == 0 && hi as u64 == u64::MAX {
                    return rng.next_u64() as $t;
                }
                rng.range_u64(lo as u64, hi as u64 + 1) as $t
            }
        }
    )*};
}

wide_range_strategy!(u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.range_f64(self.start, self.end)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.range_f64(self.start as f64, self.end as f64) as f32
    }
}

/// String literals are regex strategies, as in real proptest.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::string_regex(self)
            .unwrap_or_else(|e| panic!("bad regex strategy {self:?}: {e}"))
            .generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_name("strategy-tests")
    }

    #[test]
    fn ranges_generate_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (10u32..20).generate(&mut r);
            assert!((10..20).contains(&v));
            let w = (0usize..3).generate(&mut r);
            assert!(w < 3);
            let x = (-4i64..4).generate(&mut r);
            assert!((-4..4).contains(&x));
        }
    }

    #[test]
    fn map_union_just_compose() {
        let mut r = rng();
        let s = crate::prop_oneof![Just(1u8), (10u8..20).prop_map(|v| v / 2),];
        for _ in 0..200 {
            let v = s.generate(&mut r);
            assert!(v == 1 || (5..10).contains(&v));
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut r = rng();
        let (a, b, c) = (0u8..4, Just(7u32), 1i64..3).generate(&mut r);
        assert!(a < 4);
        assert_eq!(b, 7);
        assert!((1..3).contains(&c));
    }
}
