//! `any::<T>()` — the canonical strategy for a type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Produce one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the whole domain of `T`.
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T` (full domain).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly ASCII with an occasional multi-byte scalar, mirroring the
        // distribution that matters for the XDR string tests.
        match rng.below(8) {
            0 => char::from_u32(rng.range_u64(0x80, 0xD800) as u32).unwrap_or('\u{FFFD}'),
            _ => rng.range_u64(0x20, 0x7F) as u8 as char,
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values spanning many magnitudes; avoids NaN so equality
        // round-trips hold (real proptest's default also skews finite).
        let mantissa = rng.range_f64(-1.0, 1.0);
        let exp = rng.range_i64(-60, 60);
        mantissa * (2f64).powi(exp as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_generates_varied_values() {
        let mut rng = TestRng::from_name("arbitrary");
        let xs: Vec<u8> = (0..64).map(|_| u8::arbitrary(&mut rng)).collect();
        let distinct: std::collections::BTreeSet<_> = xs.iter().collect();
        assert!(distinct.len() > 16, "u8 stream too repetitive: {xs:?}");
        for _ in 0..100 {
            assert!(f64::arbitrary(&mut rng).is_finite());
        }
    }

    #[test]
    fn any_strategy_plugs_into_trait() {
        let mut rng = TestRng::from_name("arbitrary2");
        let s = any::<u32>();
        let _: u32 = s.generate(&mut rng);
    }
}
