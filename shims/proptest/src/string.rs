//! Regex-driven string strategies for the subset of syntax the workspace's
//! tests use: literal characters, character classes with ranges, `\PC`
//! (printable), and `{m,n}`/`{m}`/`*`/`+`/`?` quantifiers on single atoms.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt;

/// Parse error from [`string_regex`].
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unsupported regex: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// One generatable unit: a set of candidate characters plus a repeat range.
#[derive(Debug, Clone)]
struct Atom {
    /// Candidate characters (uniform choice).
    chars: Vec<char>,
    /// Repeat count bounds, inclusive.
    min: usize,
    max: usize,
}

/// Strategy generating strings matching the parsed pattern.
#[derive(Debug, Clone)]
pub struct RegexGeneratorStrategy {
    atoms: Vec<Atom>,
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in &self.atoms {
            let n = rng.range_u64(atom.min as u64, atom.max as u64 + 1) as usize;
            for _ in 0..n {
                let idx = rng.below(atom.chars.len() as u64) as usize;
                out.push(atom.chars[idx]);
            }
        }
        out
    }
}

/// Printable characters for `\PC` (ASCII printable; enough for the XDR and
/// parser fuzz tests, which only require valid UTF-8).
fn printable() -> Vec<char> {
    (0x20u8..0x7f).map(char::from).collect()
}

/// Build a string strategy from a regex pattern.
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let candidate = match c {
            '[' => parse_class(&mut chars)?,
            '\\' => parse_escape(&mut chars)?,
            '.' => printable(),
            '(' | ')' | '|' | '^' | '$' => {
                return Err(Error(format!("metacharacter {c:?} in {pattern:?}")))
            }
            lit => vec![lit],
        };
        let (min, max) = parse_quantifier(&mut chars)?;
        atoms.push(Atom {
            chars: candidate,
            min,
            max,
        });
    }
    Ok(RegexGeneratorStrategy { atoms })
}

fn parse_escape(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<Vec<char>, Error> {
    match chars.next() {
        Some('P') => {
            // Only `\PC` (complement of control) is supported.
            match chars.next() {
                Some('C') => Ok(printable()),
                other => Err(Error(format!("unsupported \\P class {other:?}"))),
            }
        }
        Some('n') => Ok(vec!['\n']),
        Some('t') => Ok(vec!['\t']),
        Some('r') => Ok(vec!['\r']),
        Some(c @ ('\\' | '.' | '[' | ']' | '{' | '}' | '(' | ')' | '*' | '+' | '?' | '-')) => {
            Ok(vec![c])
        }
        other => Err(Error(format!("unsupported escape {other:?}"))),
    }
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<Vec<char>, Error> {
    let mut set = Vec::new();
    loop {
        let c = chars.next().ok_or_else(|| Error("unclosed [".into()))?;
        match c {
            ']' => break,
            '\\' => set.extend(parse_escape(chars)?),
            lit => {
                // Range `a-z` when '-' is followed by a non-']' char.
                if chars.peek() == Some(&'-') {
                    let mut lookahead = chars.clone();
                    lookahead.next(); // consume '-'
                    match lookahead.peek() {
                        Some(&end) if end != ']' => {
                            chars.next(); // '-'
                            chars.next(); // end
                            if (lit as u32) > (end as u32) {
                                return Err(Error(format!("bad range {lit}-{end}")));
                            }
                            for cp in lit as u32..=end as u32 {
                                if let Some(ch) = char::from_u32(cp) {
                                    set.push(ch);
                                }
                            }
                            continue;
                        }
                        _ => {}
                    }
                }
                set.push(lit);
            }
        }
    }
    if set.is_empty() {
        return Err(Error("empty character class".into()));
    }
    Ok(set)
}

fn parse_quantifier(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Result<(usize, usize), Error> {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            let parts: Vec<&str> = spec.split(',').collect();
            let parse = |s: &str| {
                s.trim()
                    .parse::<usize>()
                    .map_err(|_| Error(format!("bad quantifier {{{spec}}}")))
            };
            match parts.as_slice() {
                [n] => {
                    let n = parse(n)?;
                    Ok((n, n))
                }
                [lo, hi] => Ok((parse(lo)?, parse(hi)?)),
                _ => Err(Error(format!("bad quantifier {{{spec}}}"))),
            }
        }
        Some('*') => {
            chars.next();
            Ok((0, 8))
        }
        Some('+') => {
            chars.next();
            Ok((1, 8))
        }
        Some('?') => {
            chars.next();
            Ok((0, 1))
        }
        _ => Ok((1, 1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pattern: &str) -> String {
        let mut rng = TestRng::from_name(pattern);
        string_regex(pattern).unwrap().generate(&mut rng)
    }

    #[test]
    fn identifier_pattern() {
        let mut rng = TestRng::from_name("ident");
        let s = string_regex("[a-zA-Z][a-zA-Z0-9_]{0,24}").unwrap();
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(!v.is_empty() && v.len() <= 25, "{v:?}");
            assert!(v.chars().next().unwrap().is_ascii_alphabetic());
            assert!(v.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
    }

    #[test]
    fn printable_class_bounds_length() {
        let mut rng = TestRng::from_name("pc");
        let s = string_regex("\\PC{0,64}").unwrap();
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v.len() <= 64);
            assert!(v.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn class_with_braces_and_newline_escape() {
        let mut rng = TestRng::from_name("src");
        let s = string_regex("[a-z{}();=<>,*0-9 \\n]{0,300}").unwrap();
        let allowed =
            |c: char| c.is_ascii_lowercase() || c.is_ascii_digit() || "{}();=<>,* \n".contains(c);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v.len() <= 300);
            assert!(v.chars().all(allowed), "{v:?}");
        }
    }

    #[test]
    fn fixed_literals_concatenate() {
        assert_eq!(gen("abc"), "abc");
        assert_eq!(gen("a{3}"), "aaa");
    }

    #[test]
    fn unsupported_syntax_is_an_error() {
        assert!(string_regex("(group)").is_err());
        assert!(string_regex("[unclosed").is_err());
    }
}
