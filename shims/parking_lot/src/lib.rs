//! Minimal `parking_lot`-compatible locks backed by `std::sync`.
//!
//! The workspace builds offline, so the real crates-io `parking_lot` is not
//! available. This vendored stand-in exposes the exact surface the workspace
//! uses — `Mutex`, `RwLock`, `Condvar` with non-poisoning guards — on top of
//! the standard-library primitives. Poisoned locks are recovered with
//! [`std::sync::PoisonError::into_inner`], matching parking_lot's behaviour
//! of not propagating panics between lock holders.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Non-poisoning mutex with `parking_lot`'s `lock()` signature.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Non-poisoning reader-writer lock with `parking_lot`'s `read()`/`write()`.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire an exclusive write lock. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Outcome of [`Condvar::wait_for`]: whether the wait ended by timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` if the wait timed out rather than being notified.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable usable with [`MutexGuard`] via `wait(&mut guard)`.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Atomically release the guard's mutex and block until notified.
    ///
    /// parking_lot takes the guard by `&mut` and re-acquires in place; std
    /// consumes and returns it, so the guard is moved out and back with raw
    /// pointer reads. `std::sync::Condvar::wait` only "fails" with a poison
    /// error that still carries the re-acquired guard, so the slot is always
    /// re-filled.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        unsafe {
            let inner = std::ptr::read(&guard.0);
            let reacquired = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
            std::ptr::write(&mut guard.0, reacquired);
        }
    }

    /// Like [`Condvar::wait`], but gives up after `timeout`. Returns a
    /// result whose `timed_out()` reports whether the deadline elapsed
    /// before a notification arrived (parking_lot's signature).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        unsafe {
            let inner = std::ptr::read(&guard.0);
            let (reacquired, res) = self
                .0
                .wait_timeout(inner, timeout)
                .unwrap_or_else(|e| e.into_inner());
            std::ptr::write(&mut guard.0, reacquired);
            WaitTimeoutResult(res.timed_out())
        }
    }

    /// Wake a single waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guard_derefs() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (lock, cvar) = &*pair;
        *lock.lock() = true;
        cvar.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
